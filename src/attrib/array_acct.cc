#include "attrib/array_acct.hh"

#include <algorithm>

#include "ckpt/checkpoint.hh"
#include "ckpt/serial.hh"
#include "common/json.hh"

namespace xbs
{

namespace
{

constexpr uint32_t kBuildToFirstHitMax = 4096;
constexpr uint32_t kHitsBeforeEvictMax = 512;

void
writeHeat(JsonWriter &json, const std::string &key,
          const std::vector<uint64_t> &heat, unsigned banks,
          std::size_t sets)
{
    json.beginArray(key);
    for (unsigned b = 0; b < banks; ++b) {
        json.beginArray();
        for (std::size_t s = 0; s < sets; ++s)
            json.field("", heat[(std::size_t)b * sets + s]);
        json.endArray();
    }
    json.endArray();
}

void
writeHistSummary(JsonWriter &json, const std::string &key,
                 const Histogram &h)
{
    json.beginObject(key);
    json.field("samples", h.total());
    json.field("mean", h.mean());
    json.field("p50", (uint64_t)h.p50());
    json.field("p95", (uint64_t)h.p95());
    json.field("p99", (uint64_t)h.p99());
    json.endObject();
}

} // namespace

ArrayAccounting::ArrayAccounting(StatGroup *parent,
                                 const ScalarStat *cycles,
                                 unsigned banks, std::size_t sets,
                                 std::size_t lines)
    : StatGroup("array", parent),
      headEvictions(this, "headEvictions",
                    "evicted lines that headed a variant"),
      nonHeadEvictions(this, "nonHeadEvictions",
                       "evicted lines that headed no variant"),
      zeroHitEvictions(this, "zeroHitEvictions",
                       "XBs evicted before their first delivery hit"),
      cycles_(cycles),
      banks_(banks),
      sets_(sets),
      shadowCapacity_(lines),
      allocHeat_((std::size_t)banks * sets, 0),
      evictHeat_((std::size_t)banks * sets, 0),
      conflictHeat_((std::size_t)banks * sets, 0),
      buildToFirstHit_(kBuildToFirstHitMax),
      hitsBeforeEvict_(kHitsBeforeEvictMax)
{
}

void
ArrayAccounting::onAlloc(uint64_t tag, unsigned bank, std::size_t set)
{
    // Every fresh line of an XB opens (or refreshes) its lifetime
    // record; try_emplace keeps the original build stamp for
    // multi-line XBs and extensions.
    onBuild(tag);
    ++allocHeat_[cell(bank, set)];
}

void
ArrayAccounting::onEvict(uint64_t tag, unsigned bank, std::size_t set,
                         bool head, bool last_gone)
{
    ++evictHeat_[cell(bank, set)];
    if (head)
        ++headEvictions;
    else
        ++nonHeadEvictions;

    if (!last_gone)
        return;

    auto it = live_.find(tag);
    if (it != live_.end()) {
        uint64_t hits = it->second.hits;
        hitsBeforeEvict_.add(
            (uint32_t)std::min<uint64_t>(hits, kHitsBeforeEvictMax));
        if (hits == 0)
            ++zeroHitEvictions;
        live_.erase(it);
    }
    shadowInsert(tag);
}

void
ArrayAccounting::onConflict(unsigned bank, std::size_t set)
{
    ++conflictHeat_[cell(bank, set)];
}

void
ArrayAccounting::onBuild(uint64_t tag)
{
    everBuilt_.insert(tag);
    shadowErase(tag);
    // Rebuilding a resident tag extends it; keep the original
    // lifetime record so hits accumulate across extensions.
    auto [it, inserted] = live_.try_emplace(tag);
    if (inserted)
        it->second.buildCycle = now();
}

void
ArrayAccounting::onHit(uint64_t tag)
{
    auto it = live_.find(tag);
    if (it == live_.end())
        return;
    if (it->second.hits == 0) {
        it->second.firstHitCycle = now();
        uint64_t lat = it->second.firstHitCycle - it->second.buildCycle;
        buildToFirstHit_.add(
            (uint32_t)std::min<uint64_t>(lat, kBuildToFirstHitMax));
    }
    ++it->second.hits;
}

Cause
ArrayAccounting::classifyMiss(uint64_t tag) const
{
    if (!everBuilt(tag))
        return Cause::XbcCompulsory;
    if (inShadow(tag))
        return Cause::XbcConflict;
    return Cause::XbcCapacity;
}

void
ArrayAccounting::shadowInsert(uint64_t tag)
{
    shadowErase(tag);
    shadowLru_.push_front(tag);
    shadowIndex_[tag] = shadowLru_.begin();
    while (shadowLru_.size() > shadowCapacity_) {
        shadowIndex_.erase(shadowLru_.back());
        shadowLru_.pop_back();
    }
}

void
ArrayAccounting::shadowErase(uint64_t tag)
{
    auto it = shadowIndex_.find(tag);
    if (it == shadowIndex_.end())
        return;
    shadowLru_.erase(it->second);
    shadowIndex_.erase(it);
}

void
ArrayAccounting::writeJson(JsonWriter &json) const
{
    json.beginObject("array");
    json.field("banks", (uint64_t)banks_);
    json.field("sets", (uint64_t)sets_);
    json.field("shadowCapacity", (uint64_t)shadowCapacity_);
    json.field("liveTags", (uint64_t)live_.size());
    json.field("headEvictions", headEvictions.value());
    json.field("nonHeadEvictions", nonHeadEvictions.value());
    json.field("zeroHitEvictions", zeroHitEvictions.value());
    writeHistSummary(json, "buildToFirstHit", buildToFirstHit_);
    writeHistSummary(json, "hitsBeforeEvict", hitsBeforeEvict_);
    writeHeat(json, "allocsBySet", allocHeat_, banks_, sets_);
    writeHeat(json, "evictsBySet", evictHeat_, banks_, sets_);
    writeHeat(json, "conflictsBySet", conflictHeat_, banks_, sets_);
    json.endObject();
}

namespace
{

void
saveHeat(CkptSink &sink, const std::vector<uint64_t> &heat)
{
    sink.u64(heat.size());
    for (uint64_t v : heat)
        sink.u64(v);
}

void
loadHeat(CkptSource &src, std::vector<uint64_t> &heat)
{
    uint64_t n = src.count(8);
    src.require(n == heat.size());
    for (std::size_t i = 0; src.ok() && i < heat.size(); ++i)
        heat[i] = src.u64();
}

} // namespace

void
ArrayAccounting::ckptSave(CkptSink &sink) const
{
    saveHeat(sink, allocHeat_);
    saveHeat(sink, evictHeat_);
    saveHeat(sink, conflictHeat_);

    std::vector<uint64_t> keys;
    keys.reserve(live_.size());
    for (const auto &kv : live_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    sink.u64(keys.size());
    for (uint64_t tag : keys) {
        const LifeRec &rec = live_.at(tag);
        sink.u64(tag);
        sink.u64(rec.buildCycle);
        sink.u64(rec.firstHitCycle);
        sink.u64(rec.hits);
    }

    keys.clear();
    keys.reserve(everBuilt_.size());
    for (uint64_t tag : everBuilt_)
        keys.push_back(tag);
    std::sort(keys.begin(), keys.end());
    sink.u64(keys.size());
    for (uint64_t tag : keys)
        sink.u64(tag);

    // Shadow directory in LRU order (front = most recent), which is
    // the canonical order already.
    sink.u64(shadowLru_.size());
    for (uint64_t tag : shadowLru_)
        sink.u64(tag);

    saveHistogram(buildToFirstHit_, sink);
    saveHistogram(hitsBeforeEvict_, sink);
}

void
ArrayAccounting::ckptLoad(CkptSource &src)
{
    loadHeat(src, allocHeat_);
    loadHeat(src, evictHeat_);
    loadHeat(src, conflictHeat_);

    live_.clear();
    uint64_t n = src.count(32);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        uint64_t tag = src.u64();
        LifeRec rec;
        rec.buildCycle = src.u64();
        rec.firstHitCycle = src.u64();
        rec.hits = src.u64();
        if (src.ok())
            live_[tag] = rec;
    }

    everBuilt_.clear();
    n = src.count(8);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        uint64_t tag = src.u64();
        if (src.ok())
            everBuilt_.insert(tag);
    }

    shadowLru_.clear();
    shadowIndex_.clear();
    n = src.count(8);
    src.require(n <= shadowCapacity_);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        uint64_t tag = src.u64();
        if (src.ok()) {
            shadowLru_.push_back(tag);
            auto it = shadowLru_.end();
            --it;
            shadowIndex_[tag] = it;
        }
    }

    loadHistogram(buildToFirstHit_, src);
    loadHistogram(hitsBeforeEvict_, src);
}

} // namespace xbs
