#include "attrib/rollup.hh"

#include "common/json.hh"

namespace xbs
{

namespace
{

uint64_t
sumOf(const std::vector<std::pair<std::string, uint64_t>> &cats)
{
    uint64_t sum = 0;
    for (const auto &[name, count] : cats)
        sum += count;
    return sum;
}

void
parseCategories(const JsonValue *obj,
                std::vector<std::pair<std::string, uint64_t>> *out)
{
    if (!obj || !obj->isObject())
        return;
    for (const auto &[name, value] : obj->members) {
        uint64_t count = value.asUint();
        if (count)
            out->emplace_back(name, count);
    }
}

void
writeCategories(
    JsonWriter &jw, const std::string &key,
    const std::vector<std::pair<std::string, uint64_t>> &cats)
{
    jw.beginObject(key);
    for (const auto &[name, count] : cats)
        jw.field(name, count);
    jw.endObject();
}

} // anonymous namespace

uint64_t
AttribRollup::uopSum() const
{
    return sumOf(uops);
}

uint64_t
AttribRollup::cycleSum() const
{
    return sumOf(cycles);
}

std::string
AttribRollup::dominantUopCause() const
{
    std::string best;
    uint64_t most = 0;
    for (const auto &[name, count] : uops) {
        if (count > most) {
            most = count;
            best = name;
        }
    }
    return best;
}

AttribRollup
parseAttribRollup(const JsonValue &obj)
{
    AttribRollup r;
    if (!obj.isObject())
        return r;
    r.has = true;
    if (const JsonValue *v = obj.find("buildUops"))
        r.buildUops = v->asUint();
    if (const JsonValue *v = obj.find("silentCycles"))
        r.silentCycles = v->asUint();
    parseCategories(obj.find("uops"), &r.uops);
    parseCategories(obj.find("cycles"), &r.cycles);
    return r;
}

void
writeAttribRollup(JsonWriter &jw, const AttribRollup &r,
                  const std::string &key)
{
    jw.beginObject(key);
    jw.field("buildUops", r.buildUops);
    jw.field("silentCycles", r.silentCycles);
    writeCategories(jw, "uops", r.uops);
    writeCategories(jw, "cycles", r.cycles);
    jw.endObject();
}

} // namespace xbs
