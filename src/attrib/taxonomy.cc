#include "attrib/taxonomy.hh"

namespace xbs
{

const char *
causeName(Cause cause)
{
    switch (cause) {
      case Cause::ColdStart:          return "coldStart";
      case Cause::XbtbMiss:           return "xbtbMiss";
      case Cause::XbcCompulsory:      return "xbcCompulsory";
      case Cause::XbcCapacity:        return "xbcCapacity";
      case Cause::XbcConflict:        return "xbcConflict";
      case Cause::StructMiss:         return "structMiss";
      case Cause::PartialHit:         return "partialHit";
      case Cause::CondMispredict:     return "condMispredict";
      case Cause::BtbMiss:            return "btbMiss";
      case Cause::IndirectMispredict: return "indirectMispredict";
      case Cause::ReturnMispredict:   return "returnMispredict";
      case Cause::IcMiss:             return "icMiss";
      case Cause::L2Miss:             return "l2Miss";
      case Cause::SetSearch:          return "setSearch";
      case Cause::BankConflict:       return "bankConflict";
      case Cause::PromotionRecovery:  return "promotionRecovery";
      case Cause::Unattributed:       return "unattributed";
      case Cause::kCount:             break;
    }
    return "invalid";
}

bool
isAttribDeltaPath(const std::string &path)
{
    return path.find(".attrib.uops.") != std::string::npos ||
           path.find(".attrib.cycles.") != std::string::npos;
}

std::string
attribDeltaKey(const std::string &path)
{
    const std::size_t pos = path.find(".attrib.");
    if (pos == std::string::npos)
        return path;
    return path.substr(pos + 1);
}

} // namespace xbs
