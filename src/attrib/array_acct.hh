/**
 * @file
 * Per-structure accounting for the XBC data array.
 *
 * Subscribes to the array's structural events (ArrayEventSink) and
 * maintains:
 *
 *  - set/bank heatmaps: allocations and evictions per (bank, set)
 *    plus bank-conflict deferrals per (bank, set), emitted as
 *    bank-major JSON matrices;
 *  - per-XB lifetime records: build->first-hit latency and
 *    hits-before-evict histograms, head vs non-head eviction split;
 *  - the *evicted-tag shadow directory*: a bounded LRU of recently
 *    evicted tags, capacity equal to the array's total line count,
 *    that classifies an array miss as compulsory (tag never built),
 *    conflict (tag evicted recently enough to still be in the
 *    shadow), or capacity (evicted longer ago). This is the
 *    standard bounded-shadow approximation of the 3C model for a
 *    variant-grouped structure with no single canonical LRU stack.
 */

#ifndef XBS_ATTRIB_ARRAY_ACCT_HH
#define XBS_ATTRIB_ARRAY_ACCT_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "attrib/array_sink.hh"
#include "attrib/taxonomy.hh"
#include "common/histogram.hh"
#include "common/stats.hh"

namespace xbs
{

class JsonWriter;
class CkptSink;
class CkptSource;

class ArrayAccounting : public StatGroup, public ArrayEventSink
{
  public:
    /**
     * @param parent stat tree parent (the frontend's AttribRecorder)
     * @param cycles timestamp source (the frontend's cycle counter)
     * @param banks  array bank count (heatmap geometry)
     * @param sets   array set count
     * @param lines  total line count (shadow-directory capacity)
     */
    ArrayAccounting(StatGroup *parent, const ScalarStat *cycles,
                    unsigned banks, std::size_t sets,
                    std::size_t lines);

    /// @{ ArrayEventSink
    void onAlloc(uint64_t tag, unsigned bank,
                 std::size_t set) override;
    void onEvict(uint64_t tag, unsigned bank, std::size_t set,
                 bool head, bool last_gone) override;
    void onConflict(unsigned bank, std::size_t set) override;
    /// @}

    /** An XB with @p tag finished building (entered the array). */
    void onBuild(uint64_t tag);

    /** A delivery-mode lookup for @p tag hit the array. */
    void onHit(uint64_t tag);

    /**
     * Classify a delivery-mode array miss for @p tag:
     * XbcCompulsory if the tag was never built, XbcConflict if it
     * sits in the evicted-tag shadow, XbcCapacity otherwise.
     */
    Cause classifyMiss(uint64_t tag) const;

    bool everBuilt(uint64_t tag) const
    {
        return everBuilt_.count(tag) != 0;
    }
    bool inShadow(uint64_t tag) const
    {
        return shadowIndex_.count(tag) != 0;
    }
    std::size_t shadowSize() const { return shadowLru_.size(); }

    const Histogram &buildToFirstHit() const { return buildToFirstHit_; }
    const Histogram &hitsBeforeEvict() const { return hitsBeforeEvict_; }

    /** Emit the "array" JSON member (heatmaps + lifetime summary). */
    void writeJson(JsonWriter &json) const;

    /// @{ Warm-state checkpointing (src/ckpt): heatmaps, lifetime
    ///    records, shadow directory, and histograms. Unordered
    ///    containers are serialized key-sorted for determinism.
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat headEvictions;
    ScalarStat nonHeadEvictions;
    ScalarStat zeroHitEvictions;

  private:
    std::size_t cell(unsigned bank, std::size_t set) const
    {
        return (std::size_t)bank * sets_ + set;
    }
    void shadowInsert(uint64_t tag);
    void shadowErase(uint64_t tag);
    uint64_t now() const { return cycles_ ? cycles_->value() : 0; }

    const ScalarStat *cycles_;
    unsigned banks_;
    std::size_t sets_;
    std::size_t shadowCapacity_;

    std::vector<uint64_t> allocHeat_;    ///< bank-major [banks][sets]
    std::vector<uint64_t> evictHeat_;
    std::vector<uint64_t> conflictHeat_;

    struct LifeRec
    {
        uint64_t buildCycle = 0;
        uint64_t firstHitCycle = 0;
        uint64_t hits = 0;
    };
    std::unordered_map<uint64_t, LifeRec> live_;
    std::unordered_set<uint64_t> everBuilt_;

    /** LRU list of evicted tags, most recent at the front. */
    std::list<uint64_t> shadowLru_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator>
        shadowIndex_;

    Histogram buildToFirstHit_;
    Histogram hitsBeforeEvict_;
};

} // namespace xbs

#endif // XBS_ATTRIB_ARRAY_ACCT_HH
