/**
 * @file
 * Observer interface for XBC data-array structural events.
 *
 * The data array fires these on line allocation, line eviction, and
 * bank-conflict deferral so the attribution layer can keep
 * set/bank heatmaps, per-XB lifetime histograms, and the evicted-tag
 * shadow directory without the array knowing anything about
 * attribution. Header-only and dependency-free so core can include
 * it without linking the attrib library.
 */

#ifndef XBS_ATTRIB_ARRAY_SINK_HH
#define XBS_ATTRIB_ARRAY_SINK_HH

#include <cstddef>
#include <cstdint>

namespace xbs
{

class ArrayEventSink
{
  public:
    virtual ~ArrayEventSink() = default;

    /** A line of XB @p tag was allocated in (@p bank, @p set). */
    virtual void onAlloc(uint64_t tag, unsigned bank,
                         std::size_t set) = 0;

    /**
     * A valid line of XB @p tag in (@p bank, @p set) was evicted.
     *
     * @param head      the line was the head (first) line of at
     *                  least one variant of the tag
     * @param last_gone no variant of the tag survives the eviction
     */
    virtual void onEvict(uint64_t tag, unsigned bank, std::size_t set,
                         bool head, bool last_gone) = 0;

    /** A supply from (@p bank, @p set) was deferred by a bank
     *  conflict this cycle. */
    virtual void onConflict(unsigned bank, std::size_t set) = 0;
};

} // namespace xbs

#endif // XBS_ATTRIB_ARRAY_SINK_HH
