/**
 * @file
 * The portable form of one run's attribution result: the per-cause
 * uop and silent-cycle totals as (name, count) lists, detached from
 * the live AttribRecorder so it can travel through the batch pipeline
 * (xbsim --json stdout -> scheduler -> journal -> report.json ->
 * bench.json -> xbregress/xbexplain) as plain JSON.
 *
 * Only nonzero categories are carried; the two sum invariants
 * (uops == buildUops, cycles == silentCycles) stay checkable at every
 * hop via sumsMatch().
 */

#ifndef XBS_ATTRIB_ROLLUP_HH
#define XBS_ATTRIB_ROLLUP_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xbs
{

class JsonValue;
class JsonWriter;

struct AttribRollup
{
    bool has = false;
    uint64_t buildUops = 0;
    uint64_t silentCycles = 0;
    /** Nonzero categories only, taxonomy order. */
    std::vector<std::pair<std::string, uint64_t>> uops;
    std::vector<std::pair<std::string, uint64_t>> cycles;

    uint64_t uopSum() const;
    uint64_t cycleSum() const;

    /** Both category sums reproduce their aggregates exactly. */
    bool sumsMatch() const
    {
        return uopSum() == buildUops && cycleSum() == silentCycles;
    }

    /** Name of the largest uop category ("" when empty). */
    std::string dominantUopCause() const;
};

/** Read the "attrib" object xbsim emits (absent fields tolerated). */
AttribRollup parseAttribRollup(const JsonValue &obj);

/** Emit @p r as a (nested) "attrib"-style object under @p key. */
void writeAttribRollup(JsonWriter &jw, const AttribRollup &r,
                       const std::string &key = "attrib");

} // namespace xbs

#endif // XBS_ATTRIB_ROLLUP_HH
