/**
 * @file
 * Per-frontend root-cause attribution recorder.
 *
 * The recorder is charged at exactly the sites where the headline
 * metrics are charged, so the two sum invariants hold by
 * construction:
 *
 *  - chargeBuildUops(n) is called alongside every
 *    `metrics.buildUops += n`, charging the *current* uop cause
 *    (sum over Cause of attrib.uops.* == frontend.buildUops);
 *  - chargeSilentCycle() is called alongside every
 *    `++metrics.stallCycles`, popping one unit from the FIFO of
 *    pending stall reasons (sum of attrib.cycles.* ==
 *    frontend.stallCycles).
 *
 * Uop causes use sticky "disruption" semantics: components note the
 * precise event that invalidated the supply path the moment it
 * happens (noteDisruption), a later structure hit clears it
 * (clearDisruption), and the mode switch into build consumes it
 * (enterBuild) — falling back to the caller's structural cause when
 * no disruption was recorded. This charges a whole build episode to
 * the root cause that entered it, matching the decomposition used by
 * the fetch-directed-prefetching literature.
 *
 * Stall causes use a FIFO of pending units (noteStall) so a stall
 * counter fed from several sources (set search + mispredict penalty
 * in the same cycle) still charges each silent cycle exactly once,
 * in order. Units that never become silent cycles (e.g. a penalty
 * cut short by end-of-trace) are discarded at end of run.
 */

#ifndef XBS_ATTRIB_RECORDER_HH
#define XBS_ATTRIB_RECORDER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>

#include "attrib/taxonomy.hh"
#include "common/probe.hh"
#include "common/stats.hh"

namespace xbs
{

class JsonWriter;
class ArrayAccounting;
class CkptSink;
class CkptSource;

class AttribRecorder : public StatGroup
{
  public:
    AttribRecorder(StatGroup *parent, ProbeManager *probes);

    /// @{ Uop-cause (build-entry) attribution.

    /** Record the precise event that broke the delivery path. The
     *  cause stays pending until consumed by enterBuild() or cleared
     *  by a later structure hit. */
    void noteDisruption(Cause cause);

    /** A structure hit resumed normal delivery: an earlier
     *  disruption did not cause a build entry after all. */
    void clearDisruption();

    /** Mode switch into build: latch the cause every subsequent
     *  build uop will be charged to — the pending disruption if one
     *  is fresh, otherwise @p fallback. */
    void enterBuild(Cause fallback);

    /** Charge @p n build uops to the latched cause. Call alongside
     *  every `metrics.buildUops += n`. */
    void chargeBuildUops(uint64_t n);

    /// @}
    /// @{ Silent-cycle attribution.

    /** Enqueue @p n pending stall units for @p cause (call where the
     *  stall counter is loaded, e.g. a mispredict penalty). */
    void noteStall(Cause cause, uint64_t n);

    /** Charge one fetch-silent cycle: pops the oldest pending stall
     *  unit (Unattributed if none). Call alongside every
     *  `++metrics.stallCycles`. */
    void chargeSilentCycle();

    /** Bulk variant for frontends that add stall cycles in one shot
     *  (the IC baseline). */
    void chargeSilentCycles(uint64_t n);

    /** Build-mode residency: call alongside `++metrics.buildCycles`. */
    void chargeBuildCycle() { ++buildResidency; }

    /// @}

    /** Return-stack popped empty while predicting a return. */
    void noteRsbUnderflow() { ++rsbUnderflows; }

    uint64_t uopCount(Cause c) const { return uops_[idx(c)]->value(); }
    uint64_t cycleCount(Cause c) const
    {
        return cycles_[idx(c)]->value();
    }
    uint64_t chargedUops() const;
    uint64_t chargedCycles() const;

    Cause currentUopCause() const { return latched_; }

    /**
     * Emit the "attrib" JSON member: per-cause uop and cycle counts
     * plus the metric totals they must sum to.
     *
     * @param build_uops   frontend.buildUops (uop-sum target)
     * @param stall_cycles frontend.stallCycles (cycle-sum target)
     * @param array        XBC structure accounting, or nullptr
     */
    void writeJson(JsonWriter &json, uint64_t build_uops,
                   uint64_t stall_cycles,
                   const ArrayAccounting *array = nullptr) const;

    /// @{ Warm-state checkpointing (src/ckpt): the non-stat recorder
    ///    state (the stat tree is serialized by the generic walk).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat buildResidency;
    ScalarStat bankConflictDefers;
    ScalarStat rsbUnderflows;

  private:
    static std::size_t idx(Cause c) { return (std::size_t)c; }

    StatGroup uopGroup_;
    StatGroup cycleGroup_;
    std::array<std::unique_ptr<ScalarStat>, kNumCauses> uops_;
    std::array<std::unique_ptr<ScalarStat>, kNumCauses> cycles_;

    ProbePoint disruptProbe_;
    ProbePoint buildEnterProbe_;

    Cause pending_ = Cause::ColdStart;
    bool fresh_ = true; ///< pending_ not yet consumed/cleared
    Cause latched_ = Cause::Unattributed;
    std::deque<Cause> pendingStall_;
};

} // namespace xbs

#endif // XBS_ATTRIB_RECORDER_HH
