#include "attrib/recorder.hh"

#include <string>

#include "attrib/array_acct.hh"
#include "ckpt/serial.hh"
#include "common/json.hh"

namespace xbs
{

AttribRecorder::AttribRecorder(StatGroup *parent, ProbeManager *probes)
    : StatGroup("attrib", parent),
      buildResidency(this, "buildResidency",
                     "cycles spent in build mode (== buildCycles)"),
      bankConflictDefers(this, "bankConflictDefers",
                         "delivery slots deferred by bank conflicts"),
      rsbUnderflows(this, "rsbUnderflows",
                    "return predictions from an empty return stack"),
      uopGroup_("uops", this),
      cycleGroup_("cycles", this),
      disruptProbe_(probes, "attrib", "disrupt"),
      buildEnterProbe_(probes, "attrib", "buildEnter")
{
    for (std::size_t i = 0; i < kNumCauses; ++i) {
        const char *name = causeName((Cause)i);
        uops_[i] = std::make_unique<ScalarStat>(
            &uopGroup_, name,
            std::string("build uops charged to ") + name);
        cycles_[i] = std::make_unique<ScalarStat>(
            &cycleGroup_, name,
            std::string("fetch-silent cycles charged to ") + name);
    }
}

void
AttribRecorder::noteDisruption(Cause cause)
{
    pending_ = cause;
    fresh_ = true;
    disruptProbe_.fire((int64_t)cause);
}

void
AttribRecorder::clearDisruption()
{
    fresh_ = false;
}

void
AttribRecorder::enterBuild(Cause fallback)
{
    latched_ = fresh_ ? pending_ : fallback;
    fresh_ = false;
    buildEnterProbe_.fire((int64_t)latched_);
}

void
AttribRecorder::chargeBuildUops(uint64_t n)
{
    *uops_[idx(latched_)] += n;
}

void
AttribRecorder::noteStall(Cause cause, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        pendingStall_.push_back(cause);
}

void
AttribRecorder::chargeSilentCycle()
{
    Cause c = Cause::Unattributed;
    if (!pendingStall_.empty()) {
        c = pendingStall_.front();
        pendingStall_.pop_front();
    }
    ++*cycles_[idx(c)];
}

void
AttribRecorder::chargeSilentCycles(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        chargeSilentCycle();
}

uint64_t
AttribRecorder::chargedUops() const
{
    uint64_t sum = 0;
    for (const auto &s : uops_)
        sum += s->value();
    return sum;
}

uint64_t
AttribRecorder::chargedCycles() const
{
    uint64_t sum = 0;
    for (const auto &s : cycles_)
        sum += s->value();
    return sum;
}

void
AttribRecorder::writeJson(JsonWriter &json, uint64_t build_uops,
                          uint64_t stall_cycles,
                          const ArrayAccounting *array) const
{
    json.beginObject("attrib");
    json.field("buildUops", build_uops);
    json.field("silentCycles", stall_cycles);
    json.field("buildResidency", buildResidency.value());
    json.field("bankConflictDefers", bankConflictDefers.value());
    json.field("rsbUnderflows", rsbUnderflows.value());
    json.beginObject("uops");
    for (std::size_t i = 0; i < kNumCauses; ++i)
        json.field(causeName((Cause)i), uops_[i]->value());
    json.endObject();
    json.beginObject("cycles");
    for (std::size_t i = 0; i < kNumCauses; ++i)
        json.field(causeName((Cause)i), cycles_[i]->value());
    json.endObject();
    if (array)
        array->writeJson(json);
    json.endObject();
}

void
AttribRecorder::ckptSave(CkptSink &sink) const
{
    sink.u8((uint8_t)pending_);
    sink.b(fresh_);
    sink.u8((uint8_t)latched_);
    sink.u64(pendingStall_.size());
    for (Cause c : pendingStall_)
        sink.u8((uint8_t)c);
}

void
AttribRecorder::ckptLoad(CkptSource &src)
{
    uint8_t pending = src.u8();
    bool fresh = src.b();
    uint8_t latched = src.u8();
    src.require(pending < kNumCauses && latched < kNumCauses);
    uint64_t n = src.count(1);
    std::deque<Cause> stall;
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        uint8_t c = src.u8();
        src.require(c < kNumCauses);
        if (src.ok())
            stall.push_back((Cause)c);
    }
    if (!src.ok())
        return;
    pending_ = (Cause)pending;
    fresh_ = fresh;
    latched_ = (Cause)latched;
    pendingStall_ = std::move(stall);
}

} // namespace xbs
