/**
 * @file
 * Byte-level serialization primitives for the checkpoint format:
 * a little-endian Sink/Source pair and the CRC-32 used to guard
 * each checkpoint section.
 *
 * Source is deliberately paranoid: every read is bounds-checked
 * against the remaining payload and every structural expectation
 * (element counts, enum ranges) can be asserted through require().
 * A failed Source never throws or reads out of bounds — it latches a
 * fail flag and returns zeros, and the caller turns !ok() into a
 * typed Corrupt Status. This mirrors the trace reader's contract:
 * arbitrary bytes in, structured error out, never UB.
 */

#ifndef XBS_CKPT_SERIAL_HH
#define XBS_CKPT_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace xbs
{

/** CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320 — the zlib
 *  polynomial, so external tooling can produce compatible files). */
uint32_t ckptCrc32(const void *data, std::size_t len);

inline uint32_t
ckptCrc32(const std::string &s)
{
    return ckptCrc32(s.data(), s.size());
}

/** Append-only little-endian byte sink. */
class CkptSink
{
  public:
    void
    u8(uint8_t v)
    {
        out_.push_back((char)v);
    }

    void
    u16(uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            out_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void i32(int32_t v) { u32((uint32_t)v); }
    void i64(int64_t v) { u64((uint64_t)v); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern: restoring reproduces the exact double,
     *  which the %.17g metrics JSON round-trip depends on. */
    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32((uint32_t)s.size());
        out_.append(s);
    }

    const std::string &bytes() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked little-endian reader over one section payload. */
class CkptSource
{
  public:
    explicit CkptSource(const std::string &data) : data_(&data) {}

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return (uint8_t)(*data_)[pos_++];
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= (uint16_t)(uint8_t)(*data_)[pos_++] << (8 * i);
        return v;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= (uint32_t)(uint8_t)(*data_)[pos_++] << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= (uint64_t)(uint8_t)(*data_)[pos_++] << (8 * i);
        return v;
    }

    int32_t i32() { return (int32_t)u32(); }
    int64_t i64() { return (int64_t)u64(); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        uint32_t len = u32();
        if (!need(len))
            return std::string();
        std::string s = data_->substr(pos_, len);
        pos_ += len;
        return s;
    }

    /** Read an element count and verify at least @p min_elem_size
     *  bytes per element remain (so a corrupt count cannot drive a
     *  multi-gigabyte allocation). */
    uint64_t
    count(std::size_t min_elem_size = 1)
    {
        uint64_t n = u64();
        if (min_elem_size > 0 && n > remaining() / min_elem_size)
            fail();
        return ok() ? n : 0;
    }

    /** Latch failure unless @p cond holds (element-count and enum
     *  range checks). */
    void
    require(bool cond)
    {
        if (!cond)
            fail();
    }

    bool ok() const { return !failed_; }
    std::size_t remaining() const { return data_->size() - pos_; }
    bool atEnd() const { return ok() && remaining() == 0; }

    /** ok() and every payload byte consumed — the shape a cleanly
     *  restored section must have. */
    bool consumed() const { return atEnd(); }

  private:
    bool
    need(std::size_t n)
    {
        if (failed_ || n > remaining()) {
            fail();
            return false;
        }
        return true;
    }

    void
    fail()
    {
        failed_ = true;
        pos_ = data_->size();
    }

    const std::string *data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace xbs

#endif // XBS_CKPT_SERIAL_HH
