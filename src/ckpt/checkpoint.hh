/**
 * @file
 * The live-point checkpoint container: a self-describing, versioned
 * binary file holding the complete warm microarchitectural state of
 * one frontend at a cycle boundary, so sweeps that vary only
 * downstream parameters can skip warmup ("live-points", the SMARTS /
 * SimPoint checkpointing idea applied to this simulator).
 *
 * On-disk layout (all integers little-endian):
 *
 *     File    := Header Section* Trailer
 *     Header  := magic[8] = "XBCKPT1\n"   u32 formatVersion = 1
 *     Section := u16 nameLen (>0)  name bytes
 *                u64 payloadLen    payload bytes
 *                u32 crc32(payload)
 *     Trailer := u16 0 (sentinel)
 *                u8[32] sha256 of every byte from the start of the
 *                       file through the sentinel (the guard hash)
 *
 * Integrity: every byte of the file is covered either by the
 * magic/version check, a section CRC, or the guard hash (a flip
 * inside the stored hash itself makes the recomputed hash mismatch).
 * A single bit flip anywhere is therefore detected by construction —
 * the property the ckpt-flip fault-injection mode asserts.
 *
 * Every failure mode — missing file, short file, bad magic, version
 * skew, truncated section, CRC mismatch, guard-hash mismatch,
 * malformed section payload, build incompatibility — is reported as
 * a typed Status (NotFound / Corrupt), never a crash or a silent
 * partial restore.
 */

#ifndef XBS_CKPT_CHECKPOINT_HH
#define XBS_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serial.hh"
#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/status.hh"

namespace xbs
{

/** Magic + format version of the checkpoint container. */
extern const char kCkptMagic[8]; // "XBCKPT1\n"
constexpr uint32_t kCkptFormatVersion = 1;

/**
 * Identity of the run a checkpoint was cut from. Everything here is
 * verified on restore: a checkpoint must only ever resume the exact
 * (spec, trace, build) it was taken under — anything else is Corrupt
 * data, not a best-effort warm start.
 *
 * Build provenance is carried as plain fields (mirroring
 * prof/BuildInfo) so this library depends only on common.
 */
struct CkptMeta
{
    std::string frontend;    ///< frontend kind flag ("xbc", ...)
    std::string workload;
    uint64_t insts = 0;
    uint64_t capacity = 0;
    unsigned ways = 0;

    /// @{ Identity of the driving trace.
    std::string traceName;
    uint64_t numRecords = 0;
    uint64_t totalUops = 0;
    /// @}

    std::string specCanonical; ///< canonical argv, newline-joined
    std::string specDigest;    ///< sha256 hex of specCanonical

    uint64_t cycle = 0;        ///< completed cycles at the cut

    /// @{ Build provenance (prof/BuildInfo fields).
    std::string buildCompiler;
    std::string buildType;
    std::string buildFlags;
    std::string buildSource;
    std::string buildCxxStandard;
    bool buildSanitized = false;
    /// @}
};

std::string encodeCkptMeta(const CkptMeta &meta);
Expected<CkptMeta> decodeCkptMeta(const std::string &payload);

/** BuildInfo compatibility gate, same policy as prof's
 *  buildCompatible: buildType and sanitized must match exactly
 *  (metrics are only bit-comparable within one build flavor). */
Status checkCkptBuild(const CkptMeta &meta,
                      const std::string &build_type, bool sanitized);

/** Accumulates named sections and emits the container bytes. */
class CheckpointWriter
{
  public:
    void
    addSection(const std::string &name, std::string payload)
    {
        sections_.emplace_back(name, std::move(payload));
    }

    /** Render the container (header, sections, guard trailer). */
    std::string encode() const;

    /** encode() + writeFileAtomic (crash-safe: tmp, fsync, rename,
     *  directory fsync — the crash-point matrix covers this path). */
    Status writeTo(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, std::string>> sections_;
};

/** A parsed checkpoint: sections by name, in file order. */
class CheckpointFile
{
  public:
    const std::string *
    section(const std::string &name) const
    {
        for (const auto &kv : sections_)
            if (kv.first == name)
                return &kv.second;
        return nullptr;
    }

    const std::vector<std::pair<std::string, std::string>> &
    sections() const
    {
        return sections_;
    }

    /** sha256 hex of the raw file bytes; keys restored jobs in the
     *  result cache so a warm run never aliases a cold one. */
    const std::string &fileDigest() const { return digest_; }

  private:
    friend Expected<CheckpointFile>
    parseCheckpoint(const std::string &bytes);

    std::vector<std::pair<std::string, std::string>> sections_;
    std::string digest_;
};

/** Parse container bytes; every defect is Corrupt with a cause and
 *  byte offset. */
Expected<CheckpointFile> parseCheckpoint(const std::string &bytes);

/** Read + parse a checkpoint file. A missing file is NotFound (the
 *  scheduler demotes it to a cold start); everything else Corrupt. */
Expected<CheckpointFile> readCheckpointFile(const std::string &path);

/** sha256 hex of a checkpoint file's raw bytes (for cache keying);
 *  NotFound/Corrupt on unreadable files. */
Expected<std::string> checkpointFileDigest(const std::string &path);

/// @{ Generic stat-tree serialization. The walk is deterministic
///    (registration order) and self-describing: each stat's name and
///    kind are stored and verified on restore, so a checkpoint from
///    a different frontend or model version fails as Corrupt instead
///    of silently mis-assigning counters.
void saveStatTree(const StatGroup &group, CkptSink &sink);
Status loadStatTree(StatGroup &group, CkptSource &src);
/// @}

/// @{ Common-type helpers shared by the structure serializers.
void saveHistogram(const Histogram &h, CkptSink &sink);
void loadHistogram(Histogram &h, CkptSource &src);
/// @}

} // namespace xbs

#endif // XBS_CKPT_CHECKPOINT_HH
