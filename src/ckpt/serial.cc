#include "ckpt/serial.hh"

namespace xbs
{
namespace
{

/** Table-driven reflected CRC-32, poly 0xEDB88320 (zlib). */
const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // namespace

uint32_t
ckptCrc32(const void *data, std::size_t len)
{
    const uint32_t *table = crcTable();
    const uint8_t *p = (const uint8_t *)data;
    uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace xbs
