#include "ckpt/checkpoint.hh"

#include <cstring>

#include "common/fs.hh"
#include "common/sha256.hh"

namespace xbs
{

const char kCkptMagic[8] = {'X', 'B', 'C', 'K', 'P', 'T', '1', '\n'};

namespace
{

constexpr std::size_t kHashLen = 32; // raw sha256 bytes
constexpr uint32_t kMetaVersion = 1;

Status
corrupt(const std::string &cause, uint64_t offset)
{
    Status st = Status::error(StatusCode::Corrupt, cause);
    st.withOffset(offset);
    return st;
}

/** Decode a 64-char hex digest to 32 raw bytes; "" on bad input. */
std::string
hexToRaw(const std::string &hex)
{
    if (hex.size() != 2 * kHashLen)
        return std::string();
    std::string raw(kHashLen, '\0');
    for (std::size_t i = 0; i < kHashLen; ++i) {
        int v = 0;
        for (int half = 0; half < 2; ++half) {
            char c = hex[2 * i + half];
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = c - 'a' + 10;
            else
                return std::string();
            v = (v << 4) | d;
        }
        raw[i] = (char)v;
    }
    return raw;
}

} // namespace

std::string
encodeCkptMeta(const CkptMeta &meta)
{
    CkptSink s;
    s.u32(kMetaVersion);
    s.str(meta.frontend);
    s.str(meta.workload);
    s.u64(meta.insts);
    s.u64(meta.capacity);
    s.u32(meta.ways);
    s.str(meta.traceName);
    s.u64(meta.numRecords);
    s.u64(meta.totalUops);
    s.str(meta.specCanonical);
    s.str(meta.specDigest);
    s.u64(meta.cycle);
    s.str(meta.buildCompiler);
    s.str(meta.buildType);
    s.str(meta.buildFlags);
    s.str(meta.buildSource);
    s.str(meta.buildCxxStandard);
    s.b(meta.buildSanitized);
    return s.take();
}

Expected<CkptMeta>
decodeCkptMeta(const std::string &payload)
{
    CkptSource s(payload);
    uint32_t version = s.u32();
    if (s.ok() && version != kMetaVersion) {
        return Status::error(StatusCode::Corrupt,
                             "unsupported checkpoint meta version " +
                                 std::to_string(version));
    }
    CkptMeta meta;
    meta.frontend = s.str();
    meta.workload = s.str();
    meta.insts = s.u64();
    meta.capacity = s.u64();
    meta.ways = s.u32();
    meta.traceName = s.str();
    meta.numRecords = s.u64();
    meta.totalUops = s.u64();
    meta.specCanonical = s.str();
    meta.specDigest = s.str();
    meta.cycle = s.u64();
    meta.buildCompiler = s.str();
    meta.buildType = s.str();
    meta.buildFlags = s.str();
    meta.buildSource = s.str();
    meta.buildCxxStandard = s.str();
    meta.buildSanitized = s.b();
    if (!s.consumed()) {
        return Status::error(StatusCode::Corrupt,
                             "malformed checkpoint meta section");
    }
    return meta;
}

Status
checkCkptBuild(const CkptMeta &meta, const std::string &build_type,
               bool sanitized)
{
    if (meta.buildType != build_type) {
        return Status::error(
            StatusCode::Corrupt,
            "checkpoint build type '" + meta.buildType +
                "' incompatible with running build '" + build_type +
                "'");
    }
    if (meta.buildSanitized != sanitized) {
        return Status::error(
            StatusCode::Corrupt,
            std::string("checkpoint sanitizer flavor mismatch "
                        "(checkpoint ") +
                (meta.buildSanitized ? "sanitized" : "plain") +
                ", running build " + (sanitized ? "sanitized" : "plain") +
                ")");
    }
    return Status::ok();
}

std::string
CheckpointWriter::encode() const
{
    std::string out(kCkptMagic, sizeof(kCkptMagic));
    {
        CkptSink s;
        s.u32(kCkptFormatVersion);
        out += s.bytes();
    }
    for (const auto &kv : sections_) {
        CkptSink s;
        s.u16((uint16_t)kv.first.size());
        out += s.bytes();
        out += kv.first;
        CkptSink body;
        body.u64(kv.second.size());
        out += body.bytes();
        out += kv.second;
        CkptSink crc;
        crc.u32(ckptCrc32(kv.second));
        out += crc.bytes();
    }
    // Sentinel + whole-file guard hash.
    CkptSink sentinel;
    sentinel.u16(0);
    out += sentinel.bytes();
    Sha256 sha;
    sha.update(out.data(), out.size());
    out += hexToRaw(sha.hexDigest());
    return out;
}

Status
CheckpointWriter::writeTo(const std::string &path) const
{
    return writeFileAtomic(path, encode());
}

Expected<CheckpointFile>
parseCheckpoint(const std::string &bytes)
{
    CheckpointFile file;
    file.digest_ = sha256Hex(bytes);

    std::size_t pos = 0;
    if (bytes.size() < sizeof(kCkptMagic) + 4)
        return corrupt("truncated checkpoint header", bytes.size());
    if (std::memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) != 0)
        return corrupt("bad checkpoint magic", 0);
    pos += sizeof(kCkptMagic);

    uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= (uint32_t)(uint8_t)bytes[pos + i] << (8 * i);
    if (version != kCkptFormatVersion) {
        return corrupt("unsupported checkpoint format version " +
                           std::to_string(version),
                       pos);
    }
    pos += 4;

    for (;;) {
        if (bytes.size() - pos < 2)
            return corrupt("truncated section header", pos);
        uint16_t name_len = (uint16_t)(uint8_t)bytes[pos] |
                            ((uint16_t)(uint8_t)bytes[pos + 1] << 8);
        pos += 2;
        if (name_len == 0)
            break; // sentinel: trailer follows
        if (bytes.size() - pos < name_len)
            return corrupt("truncated section name", pos);
        std::string name = bytes.substr(pos, name_len);
        pos += name_len;

        if (bytes.size() - pos < 8)
            return corrupt("truncated section length", pos);
        uint64_t payload_len = 0;
        for (int i = 0; i < 8; ++i)
            payload_len |= (uint64_t)(uint8_t)bytes[pos + i] << (8 * i);
        pos += 8;
        if (bytes.size() - pos < payload_len)
            return corrupt("truncated section '" + name + "'", pos);
        std::string payload = bytes.substr(pos, payload_len);
        pos += payload_len;

        if (bytes.size() - pos < 4)
            return corrupt("truncated section crc", pos);
        uint32_t stored = 0;
        for (int i = 0; i < 4; ++i)
            stored |= (uint32_t)(uint8_t)bytes[pos + i] << (8 * i);
        if (stored != ckptCrc32(payload)) {
            return corrupt("section '" + name + "' crc mismatch", pos);
        }
        pos += 4;

        if (file.section(name))
            return corrupt("duplicate section '" + name + "'", pos);
        file.sections_.emplace_back(std::move(name),
                                    std::move(payload));
    }

    // pos sits just past the sentinel; the guard hash covers
    // everything before it.
    if (bytes.size() - pos < kHashLen)
        return corrupt("truncated guard hash", pos);
    Sha256 sha;
    sha.update(bytes.data(), pos);
    std::string expect = hexToRaw(sha.hexDigest());
    if (bytes.compare(pos, kHashLen, expect) != 0)
        return corrupt("guard hash mismatch", pos);
    pos += kHashLen;
    if (pos != bytes.size())
        return corrupt("trailing bytes after guard hash", pos);

    return file;
}

Expected<CheckpointFile>
readCheckpointFile(const std::string &path)
{
    Expected<std::string> bytes = readFileToString(path);
    if (!bytes.ok()) {
        Status st = bytes.status();
        st.withFile(path);
        return st;
    }
    Expected<CheckpointFile> file = parseCheckpoint(bytes.take());
    if (!file.ok()) {
        Status st = file.status();
        st.withFile(path);
        return st;
    }
    return file;
}

Expected<std::string>
checkpointFileDigest(const std::string &path)
{
    Expected<std::string> bytes = readFileToString(path);
    if (!bytes.ok()) {
        Status st = bytes.status();
        st.withFile(path);
        return st;
    }
    return sha256Hex(bytes.take());
}

namespace
{

enum class StatKind : uint8_t
{
    Scalar = 1,
    Average = 2,
    Formula = 3,
    Distribution = 4,
};

void
saveGroup(const StatGroup &group, CkptSink &sink)
{
    sink.str(group.statName());
    sink.u32((uint32_t)group.stats().size());
    for (const StatBase *stat : group.stats()) {
        sink.str(stat->name());
        if (const auto *s = dynamic_cast<const ScalarStat *>(stat)) {
            sink.u8((uint8_t)StatKind::Scalar);
            sink.u64(s->value());
        } else if (const auto *a =
                       dynamic_cast<const AverageStat *>(stat)) {
            sink.u8((uint8_t)StatKind::Average);
            sink.f64(a->sum());
            sink.u64(a->count());
        } else if (dynamic_cast<const FormulaStat *>(stat)) {
            // Stateless: restored by restoring its ingredients.
            sink.u8((uint8_t)StatKind::Formula);
        } else if (const auto *d =
                       dynamic_cast<const DistributionStat *>(stat)) {
            sink.u8((uint8_t)StatKind::Distribution);
            sink.u32((uint32_t)d->numBuckets());
            for (std::size_t i = 0; i < d->numBuckets(); ++i)
                sink.u64(d->bucketCount(i));
            sink.u64(d->underflow());
            sink.u64(d->overflow());
            sink.u64(d->samples());
            sink.f64(d->sum());
            sink.f64(d->squares());
        } else {
            // Unknown stat kind: record as formula-like (no state).
            sink.u8((uint8_t)StatKind::Formula);
        }
    }
    sink.u32((uint32_t)group.children().size());
    for (const StatGroup *child : group.children())
        saveGroup(*child, sink);
}

Status
loadGroup(StatGroup &group, CkptSource &src)
{
    std::string name = src.str();
    if (src.ok() && name != group.statName()) {
        return Status::error(StatusCode::Corrupt,
                             "stat tree mismatch: expected group '" +
                                 group.statName() + "', found '" +
                                 name + "'");
    }
    uint32_t num_stats = src.u32();
    if (src.ok() && num_stats != group.stats().size()) {
        return Status::error(StatusCode::Corrupt,
                             "stat tree mismatch in group '" +
                                 group.statName() + "'");
    }
    for (std::size_t i = 0; src.ok() && i < group.stats().size();
         ++i) {
        StatBase *stat = group.stats()[i];
        std::string sname = src.str();
        uint8_t kind = src.u8();
        if (!src.ok())
            break;
        if (sname != stat->name()) {
            return Status::error(StatusCode::Corrupt,
                                 "stat tree mismatch: expected '" +
                                     stat->name() + "', found '" +
                                     sname + "'");
        }
        switch ((StatKind)kind) {
          case StatKind::Scalar: {
            auto *s = dynamic_cast<ScalarStat *>(stat);
            uint64_t v = src.u64();
            if (!s)
                return Status::error(StatusCode::Corrupt,
                                     "stat kind mismatch for '" +
                                         sname + "'");
            s->set(v);
            break;
          }
          case StatKind::Average: {
            auto *a = dynamic_cast<AverageStat *>(stat);
            double sum = src.f64();
            uint64_t count = src.u64();
            if (!a)
                return Status::error(StatusCode::Corrupt,
                                     "stat kind mismatch for '" +
                                         sname + "'");
            a->restore(sum, count);
            break;
          }
          case StatKind::Formula:
            break;
          case StatKind::Distribution: {
            auto *d = dynamic_cast<DistributionStat *>(stat);
            uint32_t buckets = src.u32();
            if (!d || !src.ok() ||
                (std::size_t)buckets != (d ? d->numBuckets() : 0)) {
                return Status::error(StatusCode::Corrupt,
                                     "stat kind mismatch for '" +
                                         sname + "'");
            }
            std::vector<uint64_t> counts(buckets);
            for (uint32_t b = 0; b < buckets; ++b)
                counts[b] = src.u64();
            uint64_t under = src.u64();
            uint64_t over = src.u64();
            uint64_t samples = src.u64();
            double sum = src.f64();
            double squares = src.f64();
            if (!src.ok())
                break;
            d->restore(counts, under, over, samples, sum, squares);
            break;
          }
          default:
            return Status::error(StatusCode::Corrupt,
                                 "unknown stat kind for '" + sname +
                                     "'");
        }
    }
    uint32_t num_children = src.u32();
    if (src.ok() && num_children != group.children().size()) {
        return Status::error(StatusCode::Corrupt,
                             "stat tree mismatch in group '" +
                                 group.statName() + "'");
    }
    for (StatGroup *child : group.children()) {
        if (!src.ok())
            break;
        Status st = loadGroup(*child, src);
        if (!st.isOk())
            return st;
    }
    if (!src.ok()) {
        return Status::error(StatusCode::Corrupt,
                             "truncated stat tree in group '" +
                                 group.statName() + "'");
    }
    return Status::ok();
}

} // namespace

void
saveStatTree(const StatGroup &group, CkptSink &sink)
{
    saveGroup(group, sink);
}

Status
loadStatTree(StatGroup &group, CkptSource &src)
{
    return loadGroup(group, src);
}

void
saveHistogram(const Histogram &h, CkptSink &sink)
{
    sink.u32((uint32_t)h.bins().size());
    for (uint64_t bin : h.bins())
        sink.u64(bin);
    sink.u64(h.total());
    sink.f64(h.sumValue());
}

void
loadHistogram(Histogram &h, CkptSource &src)
{
    uint32_t bins = src.u32();
    src.require(bins == h.bins().size());
    std::vector<uint64_t> counts(src.ok() ? bins : 0);
    for (uint32_t i = 0; src.ok() && i < bins; ++i)
        counts[i] = src.u64();
    uint64_t total = src.u64();
    double sum = src.f64();
    if (src.ok())
        h.restore(counts, total, sum);
}

} // namespace xbs
