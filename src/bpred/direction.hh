/**
 * @file
 * Direction predictors: GSHARE [McF93] and a bimodal baseline.
 *
 * The paper simulates a 16-bit-history GSHARE for both the XBC (as
 * the XBP sub-unit) and the TC. Prediction and update are separated
 * so frontends can predict speculatively and update at retirement
 * order (our trace-driven model updates immediately after comparing
 * with the actual outcome).
 */

#ifndef XBS_BPRED_DIRECTION_HH
#define XBS_BPRED_DIRECTION_HH

#include <cstdint>
#include <vector>

namespace xbs
{

class CkptSink;
class CkptSource;

/** Common interface so frontends can swap direction predictors. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at @p ip. */
    virtual bool predict(uint64_t ip) const = 0;

    /** Commit the actual outcome (updates tables and history). */
    virtual void update(uint64_t ip, bool taken) = 0;

    virtual void reset() = 0;
};

/** 2-bit saturating counter helper. */
class Counter2
{
  public:
    bool taken() const { return v_ >= 2; }

    void
    train(bool taken)
    {
        if (taken) {
            if (v_ < 3)
                ++v_;
        } else {
            if (v_ > 0)
                --v_;
        }
    }

    void init(uint8_t v) { v_ = v; }

    /** Raw counter value (checkpoint serialization). */
    uint8_t raw() const { return v_; }

  private:
    uint8_t v_ = 2;  // weakly taken
};

/** GSHARE: global history XORed with the branch address. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param history_bits global history length (paper: 16); the
     *        counter table has 2^history_bits entries
     */
    explicit GsharePredictor(unsigned history_bits = 16);

    bool predict(uint64_t ip) const override;
    void update(uint64_t ip, bool taken) override;
    void reset() override;

    uint64_t history() const { return history_; }

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

  private:
    std::size_t index(uint64_t ip) const;

    unsigned historyBits_;
    uint64_t history_ = 0;
    std::vector<Counter2> table_;
};

/** Bimodal: per-address 2-bit counters, no history. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned table_bits = 14);

    bool predict(uint64_t ip) const override;
    void update(uint64_t ip, bool taken) override;
    void reset() override;

  private:
    std::size_t index(uint64_t ip) const;

    unsigned tableBits_;
    std::vector<Counter2> table_;
};

} // namespace xbs

#endif // XBS_BPRED_DIRECTION_HH
