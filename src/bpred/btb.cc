#include "bpred/btb.hh"

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

Btb::Btb(unsigned num_sets, unsigned ways)
    : numSets_(num_sets), ways_(ways)
{
    xbs_assert(isPowerOf2(num_sets), "BTB sets must be a power of 2");
    xbs_assert(ways >= 1, "BTB needs at least one way");
    entries_.resize((std::size_t)numSets_ * ways_);
}

std::size_t
Btb::setOf(uint64_t ip) const
{
    return (std::size_t)foldedIndex(ip, numSets_, 1);
}

Btb::Entry *
Btb::findEntry(uint64_t ip)
{
    std::size_t base = setOf(ip) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == ip)
            return &e;
    }
    return nullptr;
}

std::optional<uint64_t>
Btb::lookup(uint64_t ip)
{
    if (Entry *e = findEntry(ip)) {
        e->lru = ++clock_;
        ++hits_;
        return e->target;
    }
    ++misses_;
    return std::nullopt;
}

void
Btb::update(uint64_t ip, uint64_t target)
{
    if (Entry *e = findEntry(ip)) {
        e->target = target;
        e->lru = ++clock_;
        return;
    }
    std::size_t base = setOf(ip) * ways_;
    Entry *victim = &entries_[base];
    for (unsigned w = 1; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru && victim->valid)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = ip;
    victim->target = target;
    victim->lru = ++clock_;
}

void
Btb::invalidate(uint64_t ip)
{
    if (Entry *e = findEntry(ip))
        e->valid = false;
}

void
Btb::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    clock_ = hits_ = misses_ = 0;
}

void
Btb::ckptSave(CkptSink &sink) const
{
    sink.u64(entries_.size());
    for (const Entry &e : entries_) {
        sink.b(e.valid);
        sink.u64(e.tag);
        sink.u64(e.target);
        sink.u64(e.lru);
    }
    sink.u64(clock_);
    sink.u64(hits_);
    sink.u64(misses_);
}

void
Btb::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(1);
    src.require(n == entries_.size());
    for (std::size_t i = 0; src.ok() && i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        e.valid = src.b();
        e.tag = src.u64();
        e.target = src.u64();
        e.lru = src.u64();
    }
    clock_ = src.u64();
    hits_ = src.u64();
    misses_ = src.u64();
}

ReturnStack::ReturnStack(unsigned depth)
    : stack_(depth, 0)
{
    xbs_assert(depth >= 1, "return stack needs depth");
}

void
ReturnStack::push(uint64_t return_ip)
{
    topIdx_ = (topIdx_ + 1) % stack_.size();
    stack_[topIdx_] = return_ip;
    if (size_ < stack_.size())
        ++size_;
}

uint64_t
ReturnStack::pop()
{
    if (size_ == 0) {
        ++underflows_;
        return 0;
    }
    uint64_t v = stack_[topIdx_];
    topIdx_ = (topIdx_ + stack_.size() - 1) % stack_.size();
    --size_;
    return v;
}

uint64_t
ReturnStack::top() const
{
    return size_ ? stack_[topIdx_] : 0;
}

void
ReturnStack::reset()
{
    topIdx_ = 0;
    size_ = 0;
    underflows_ = 0;
}

void
ReturnStack::ckptSave(CkptSink &sink) const
{
    sink.u64(stack_.size());
    for (uint64_t v : stack_)
        sink.u64(v);
    sink.u32(topIdx_);
    sink.u32(size_);
    sink.u64(underflows_);
}

void
ReturnStack::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(8);
    src.require(n == stack_.size());
    for (std::size_t i = 0; src.ok() && i < stack_.size(); ++i)
        stack_[i] = src.u64();
    topIdx_ = src.u32();
    size_ = src.u32();
    underflows_ = src.u64();
    src.require(topIdx_ < stack_.size() && size_ <= stack_.size());
}

IndirectPredictor::IndirectPredictor(unsigned num_sets, unsigned ways)
    : table_(num_sets, ways)
{
}

std::optional<uint64_t>
IndirectPredictor::predict(uint64_t ip)
{
    return table_.lookup(ip);
}

void
IndirectPredictor::update(uint64_t ip, uint64_t target)
{
    table_.update(ip, target);
}

void
IndirectPredictor::reset()
{
    table_.reset();
}

} // namespace xbs
