#include "bpred/direction.hh"

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

GsharePredictor::GsharePredictor(unsigned history_bits)
    : historyBits_(history_bits)
{
    xbs_assert(history_bits >= 1 && history_bits <= 24,
               "unreasonable gshare history %u", history_bits);
    table_.resize(1ULL << historyBits_);
}

std::size_t
GsharePredictor::index(uint64_t ip) const
{
    // Drop the low bit (branches are at arbitrary byte addresses in
    // x86, so no fixed alignment shift), fold, and XOR with history.
    uint64_t folded = (ip >> 1) ^ (ip >> (1 + historyBits_));
    return (std::size_t)((folded ^ history_) & mask(historyBits_));
}

bool
GsharePredictor::predict(uint64_t ip) const
{
    return table_[index(ip)].taken();
}

void
GsharePredictor::update(uint64_t ip, bool taken)
{
    table_[index(ip)].train(taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask(historyBits_);
}

void
GsharePredictor::reset()
{
    history_ = 0;
    for (auto &c : table_)
        c.init(2);
}

void
GsharePredictor::ckptSave(CkptSink &sink) const
{
    sink.u64(history_);
    sink.u64(table_.size());
    for (const Counter2 &c : table_)
        sink.u8(c.raw());
}

void
GsharePredictor::ckptLoad(CkptSource &src)
{
    history_ = src.u64();
    uint64_t n = src.count(1);
    src.require(n == table_.size());
    for (std::size_t i = 0; src.ok() && i < table_.size(); ++i)
        table_[i].init(src.u8());
}

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : tableBits_(table_bits)
{
    table_.resize(1ULL << tableBits_);
}

std::size_t
BimodalPredictor::index(uint64_t ip) const
{
    return (std::size_t)(((ip >> 1) ^ (ip >> (1 + tableBits_))) &
                         mask(tableBits_));
}

bool
BimodalPredictor::predict(uint64_t ip) const
{
    return table_[index(ip)].taken();
}

void
BimodalPredictor::update(uint64_t ip, bool taken)
{
    table_[index(ip)].train(taken);
}

void
BimodalPredictor::reset()
{
    for (auto &c : table_)
        c.init(2);
}

} // namespace xbs
