/**
 * @file
 * Branch Target Buffer: set-associative, LRU, tagged by branch IP.
 * Used by the legacy (IC-path) pipeline of all frontends to redirect
 * fetch for taken direct branches without waiting for decode.
 */

#ifndef XBS_BPRED_BTB_HH
#define XBS_BPRED_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace xbs
{

class CkptSink;
class CkptSource;

class Btb
{
  public:
    /**
     * @param num_sets power-of-two set count
     * @param ways     associativity
     */
    Btb(unsigned num_sets = 1024, unsigned ways = 4);

    /** @return the stored target for @p ip, if present (updates LRU). */
    std::optional<uint64_t> lookup(uint64_t ip);

    /** Insert or refresh the mapping ip -> target. */
    void update(uint64_t ip, uint64_t target);

    /** Remove a mapping if present (used on target changes). */
    void invalidate(uint64_t ip);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
    };

    std::size_t setOf(uint64_t ip) const;
    Entry *findEntry(uint64_t ip);

    unsigned numSets_;
    unsigned ways_;
    std::vector<Entry> entries_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Return stack buffer: a fixed-depth circular stack of return IPs. */
class ReturnStack
{
  public:
    explicit ReturnStack(unsigned depth = 16);

    void push(uint64_t return_ip);

    /** Pop the predicted return target; 0 if empty. */
    uint64_t pop();

    /** Top without popping; 0 if empty. */
    uint64_t top() const;

    unsigned size() const { return size_; }

    /** Pops that found the stack empty (deep call chains wrapping
     *  the circular stack; attribution splits return mispredicts on
     *  this). */
    uint64_t underflows() const { return underflows_; }

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

  private:
    std::vector<uint64_t> stack_;
    unsigned topIdx_ = 0;
    unsigned size_ = 0;
    uint64_t underflows_ = 0;
};

/**
 * Indirect target predictor: a tagged last-target table indexed by
 * branch IP (the paper's XiBTB plays this role at XB granularity).
 */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(unsigned num_sets = 512,
                               unsigned ways = 4);

    std::optional<uint64_t> predict(uint64_t ip);
    void update(uint64_t ip, uint64_t target);
    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const { table_.ckptSave(sink); }
    void ckptLoad(CkptSource &src) { table_.ckptLoad(src); }
    /// @}

  private:
    Btb table_;
};

} // namespace xbs

#endif // XBS_BPRED_BTB_HH
