/**
 * @file
 * The sweep journal: everything xbatch needs to survive its own
 * death.
 *
 * A sweep directory contains:
 *
 *   manifest.json   the full job matrix and supervisor settings,
 *                   written once (atomically) before the first
 *                   launch; --resume re-reads the matrix from here
 *                   so a resumed sweep runs exactly the same jobs.
 *   journal.jsonl   one line per job transition, fsync'd as written:
 *                     {"seq":N,"event":"launch","job":J,"attempt":A}
 *                     {"seq":N,"event":"result","job":J,"attempt":A,
 *                      "class":"ok|usage|...","exit":E,"signal":S,
 *                      "seconds":T, metrics...}
 *                     {"seq":N,"event":"final","job":J,
 *                      "class":"...","attempts":A, metrics...}
 *   report.json     the aggregate report (see batch/report.hh),
 *                   rewritten atomically when the sweep finishes
 *                   or drains.
 *
 * Replay semantics (resume): a job whose last event is "final" is
 * complete and is NOT re-executed — its recorded class and metrics
 * flow into the resumed report. A "launch" without a matching
 * "result" means the supervisor died with the child in flight: the
 * job is re-queued (the attempt did not consume a retry, since its
 * outcome is unknown). A torn final line — the crash landed mid
 * write — is detected by its missing newline / malformed JSON and
 * ignored.
 */

#ifndef XBS_BATCH_JOURNAL_HH
#define XBS_BATCH_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "batch/job.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/status.hh"

namespace xbs
{

/** Supervisor settings recorded alongside the matrix. */
struct SweepManifest
{
    int version = 1;
    std::string xbsim;        ///< child binary path
    unsigned workers = 2;
    double timeoutSec = 300.0;
    unsigned maxRetries = 1;
    unsigned backoffMs = 200;
    /// Per-job interval-stats window (0: off). Optional in the file
    /// so pre-existing manifests still parse; recorded so a resumed
    /// sweep relaunches children with the same observation flags.
    uint64_t intervalCycles = 0;
    /// Live telemetry: child heartbeat period in seconds (0: off)
    /// and the stall threshold in periods. Optional in the file so
    /// pre-existing manifests still parse; recorded so a resumed
    /// sweep supervises exactly like the original.
    double heartbeatSec = 0.0;
    unsigned stallPeriods = 4;
    /// Children run with --perf (host microarchitecture counters).
    /// Optional in the file; recorded so a resumed sweep relaunches
    /// with the same observation flags.
    bool perf = false;
    std::vector<JobSpec> jobs;
};

/** One journal line. */
struct JournalEvent
{
    enum class Kind
    {
        /// Service-mode admission: the spec arrived over the socket
        /// (xbatchd has no static manifest; replaying the Submit
        /// events reconstructs the matrix). Carries spec/tenant/
        /// priority.
        Submit,
        Launch,
        Result,
        Final,
        /// Service-mode cancellation of a not-yet-final job.
        Cancel,
    };

    Kind kind = Kind::Launch;
    uint64_t seq = 0;
    int job = -1;
    int attempt = 0;           ///< 1-based; Final carries total
    JobClass cls = JobClass::Ok;
    int exitCode = -1;
    int termSignal = 0;
    double seconds = 0.0;
    bool hasMetrics = false;
    JobMetrics metrics;
    bool hasUsage = false;
    JobUsage usage;            ///< child rusage (wait4) if captured
    bool hasPerf = false;
    JobPerf perf;              ///< child host perf counters (--perf)
    std::string note;
    /// Final only: the result came from the cache, not a simulation
    /// (`seconds` is then the hit latency).
    bool cached = false;
    /// @{ Submit only.
    std::vector<std::string> spec;  ///< RunSpec argv round trip
    std::string tenant;
    int priority = 0;
    /// @}
};

/** Shared (journal + result cache) metrics serialization; doubles
 *  are written at full precision so a replayed or cached metric is
 *  bit-identical to the simulated one. */
void writeJobMetricsFields(JsonWriter &jw, const JobMetrics &m);
JobMetrics readJobMetricsFields(const JsonValue &v);

const char *journalEventKindName(JournalEvent::Kind kind);

class SweepJournal
{
  public:
    /// @{ Manifest (atomic whole-file).
    static Status writeManifest(const std::string &dir,
                                const SweepManifest &manifest);
    static Expected<SweepManifest> readManifest(const std::string &dir);
    /// @}

    /** Open (append) the journal in @p dir; creates it if missing. */
    Status open(const std::string &dir);

    /**
     * Append one event; stamps event.seq. With @p durable false the
     * record is written but not fsync'd — call sync() before
     * acknowledging it to anyone (group commit for the service's
     * cached-completion bursts).
     */
    Status append(JournalEvent &event, bool durable = true);

    /** Group-commit barrier for batched appends. */
    Status sync();

    /**
     * Read back every complete event in @p dir's journal. A torn or
     * malformed *final* line is ignored (crash mid-append); a
     * malformed line in the middle is a data error.
     */
    static Expected<std::vector<JournalEvent>> replay(
        const std::string &dir);

    /** Continue sequence numbers after the replayed events. */
    void seedSeq(uint64_t last_seq) { seq_ = last_seq; }

    const std::string &dir() const { return dir_; }
    bool isOpen() const { return log_.isOpen(); }

    static std::string manifestPath(const std::string &dir);
    static std::string journalPath(const std::string &dir);

  private:
    AppendLog log_;
    std::string dir_;
    uint64_t seq_ = 0;
};

} // namespace xbs

#endif // XBS_BATCH_JOURNAL_HH
