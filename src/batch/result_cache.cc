#include "batch/result_cache.hh"

#include <cstdio>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "batch/journal.hh"
#include "common/crashpoint.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/sha256.hh"
#include "ckpt/checkpoint.hh"
#include "prof/build_info.hh"
#include "workload/catalog.hh"

namespace xbs
{

namespace
{

/** Fixed-format doubles so the hash input is platform-stable. */
void
hashField(Sha256 &h, const char *name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.17g\n", name, v);
    h.update(buf, std::strlen(buf));
}

void
hashField(Sha256 &h, const char *name, uint64_t v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu\n", name,
                  (unsigned long long)v);
    h.update(buf, std::strlen(buf));
}

void
hashField(Sha256 &h, const char *name, const std::string &v)
{
    h.update(name, std::strlen(name));
    h.update("=", 1);
    h.update(v);
    h.update("\n", 1);
}

constexpr char kBodyHashPrefix[] = "sha256:";

} // anonymous namespace

Expected<std::string>
workloadContentHash(const std::string &name)
{
    Expected<const CatalogEntry *> e = findWorkloadEx(name);
    if (!e.ok())
        return e.status();
    const WorkloadProfile &p = e.value()->profile;

    // Every field that influences program generation or execution,
    // in declaration order. Adding a profile knob without extending
    // this list would serve stale results, so test_svc pins the
    // hash of a known profile.
    Sha256 h;
    hashField(h, "name", p.name);
    hashField(h, "suite", p.suite);
    hashField(h, "seed", p.seed);
    hashField(h, "numFunctions", (uint64_t)p.numFunctions);
    hashField(h, "itemsPerFunctionMean", p.itemsPerFunctionMean);
    hashField(h, "bodyInstMean", p.bodyInstMean);
    hashField(h, "uopsPerInstMean", p.uopsPerInstMean);
    hashField(h, "instLenMean", p.instLenMean);
    hashField(h, "wStraight", p.wStraight);
    hashField(h, "wIfElse", p.wIfElse);
    hashField(h, "wLoop", p.wLoop);
    hashField(h, "wSwitch", p.wSwitch);
    hashField(h, "wCall", p.wCall);
    hashField(h, "monotonicFraction", p.monotonicFraction);
    hashField(h, "patternFraction", p.patternFraction);
    hashField(h, "biasLow", p.biasLow);
    hashField(h, "biasHigh", p.biasHigh);
    hashField(h, "shortTripMean", p.shortTripMean);
    hashField(h, "longLoopFraction", p.longLoopFraction);
    hashField(h, "longTripMin", (uint64_t)p.longTripMin);
    hashField(h, "longTripMax", (uint64_t)p.longTripMax);
    hashField(h, "tripJitter", p.tripJitter);
    hashField(h, "switchFanoutMax", (uint64_t)p.switchFanoutMax);
    hashField(h, "indirectCallFraction", p.indirectCallFraction);
    hashField(h, "icallFanoutMax", (uint64_t)p.icallFanoutMax);
    hashField(h, "indirectRepeatProb", p.indirectRepeatProb);
    hashField(h, "calleeZipfS", p.calleeZipfS);
    hashField(h, "maxNestDepth", (uint64_t)p.maxNestDepth);
    hashField(h, "armItemMean", p.armItemMean);
    hashField(h, "nestedCallScale", p.nestedCallScale);
    hashField(h, "mainIterationBudget", p.mainIterationBudget);
    hashField(h, "budgetDecay", p.budgetDecay);
    return h.hexDigest();
}

const std::string &
buildInfoHash()
{
    static const std::string hash = [] {
        const BuildInfo &b = buildInfo();
        Sha256 h;
        hashField(h, "compiler", b.compiler);
        hashField(h, "buildType", b.buildType);
        hashField(h, "flags", b.flags);
        hashField(h, "source", b.source);
        hashField(h, "cxxStandard", b.cxxStandard);
        hashField(h, "sanitized", (uint64_t)(b.sanitized ? 1 : 0));
        return h.hexDigest();
    }();
    return hash;
}

Expected<CacheKey>
makeCacheKey(const RunSpec &run)
{
    // Canonicalize through the argv round trip (the encoding the
    // manifest and journal already rely on) with the effective
    // instruction count resolved: insts=0 means "the default", and
    // the default moves with XBS_TRACE_LEN/XBS_FAST, so two
    // environments with different defaults must not share entries.
    Expected<RunSpec> canon = RunSpec::fromArgv(run.toArgv());
    if (!canon.ok())
        return canon.status();
    RunSpec spec = canon.take();
    if (spec.insts == 0)
        spec.insts = defaultTraceLength();

    Expected<std::string> workload = workloadContentHash(spec.workload);
    if (!workload.ok())
        return workload.status();

    CacheKey key;
    // A restored job keys on the checkpoint *content*, not its path:
    // hash the file's bytes and canonicalize the path out of the
    // spec. An unreadable checkpoint means no key — the caller
    // simulates (and the run itself then reports the defect).
    if (!spec.restoreFrom.empty()) {
        Expected<std::string> digest =
            checkpointFileDigest(spec.restoreFrom);
        if (!digest.ok())
            return digest.status();
        key.ckptDigest = digest.take();
        spec.restoreFrom.clear();
    }
    std::string joined;
    for (const std::string &flag : spec.toArgv()) {
        joined += flag;
        joined += '\n';
    }
    key.spec = std::move(joined);
    key.workloadHash = workload.take();
    key.buildHash = buildInfoHash();

    Sha256 h;
    h.update(key.spec);
    h.update("\0", 1);
    h.update(key.workloadHash);
    h.update("\0", 1);
    h.update(key.buildHash);
    if (!key.ckptDigest.empty()) {
        // Appended only for warm runs so every pre-existing cold-run
        // cache entry keeps its address.
        h.update("\0", 1);
        h.update(key.ckptDigest);
    }
    key.hex = h.hexDigest();
    return key;
}

Status
ResultCache::open(const std::string &dir)
{
    if (Status st = ensureDir(dir + "/objects"); !st.isOk())
        return st;
    dir_ = dir;
    return Status::ok();
}

std::string
ResultCache::entryPath(const CacheKey &key) const
{
    return dir_ + "/objects/" + key.hex.substr(0, 2) + "/" + key.hex;
}

Expected<CacheEntry>
ResultCache::lookup(const CacheKey &key)
{
    if (!isOpen())
        return Status::error("result cache is not open");
    const std::string path = entryPath(key);
    Expected<std::string> text = readFileToString(path);
    if (!text.ok()) {
        ++misses_;
        return Status::error(StatusCode::NotFound,
                             "no cache entry").withFile(path);
    }

    // Layout: "sha256:<hex>\n<body>". The guard covers the exact
    // body bytes, so any tear or flip — including in the JSON the
    // parser would happily half-read — demotes the entry to a miss.
    auto corrupt = [&](const std::string &why) -> Status {
        ++corrupt_;
        ::unlink(path.c_str());
        return Status::error(StatusCode::Corrupt,
                             "corrupt cache entry: " + why)
            .withFile(path);
    };
    const std::string &raw = text.value();
    std::size_t nl = raw.find('\n');
    if (nl == std::string::npos)
        return corrupt("no guard line");
    const std::string guard = raw.substr(0, nl);
    const std::string body = raw.substr(nl + 1);
    if (guard.rfind(kBodyHashPrefix, 0) != 0)
        return corrupt("bad guard prefix");
    if (guard.substr(sizeof(kBodyHashPrefix) - 1) != sha256Hex(body))
        return corrupt("body hash mismatch");

    JsonValue v;
    std::string err;
    if (!parseJson(body, &v, &err) || !v.isObject())
        return corrupt("unparseable body: " + err);
    const JsonValue *spec = v.find("spec");
    if (!spec || spec->asString() != key.spec)
        return corrupt("key mismatch (hash collision or bad store)");

    CacheEntry entry;
    if (const JsonValue *f = v.find("label"))
        entry.label = f->asString();
    if (const JsonValue *f = v.find("seconds"))
        entry.seconds = f->asNumber();
    entry.metrics = readJobMetricsFields(v);
    ++hits_;
    return entry;
}

Status
ResultCache::store(const CacheKey &key, const CacheEntry &entry)
{
    if (!isOpen())
        return Status::error("result cache is not open");
    if (!key.valid())
        return Status::error("invalid cache key");

    std::ostringstream body;
    {
        JsonWriter jw(body, /*pretty=*/false);
        jw.beginObject();
        jw.field("version", (uint64_t)1);
        jw.field("spec", key.spec);
        jw.field("workloadHash", key.workloadHash);
        jw.field("buildHash", key.buildHash);
        if (!key.ckptDigest.empty())
            jw.field("ckptDigest", key.ckptDigest);
        jw.field("label", entry.label);
        jw.fieldFull("seconds", entry.seconds);
        writeJobMetricsFields(jw, entry.metrics);
        jw.endObject();
    }

    const std::string path = entryPath(key);
    const std::string shard = dir_ + "/objects/" + key.hex.substr(0, 2);
    if (Status st = ensureDir(shard); !st.isOk())
        return st;
    crashPoint("cache.pre_store");
    Status st = writeFileAtomic(
        path, kBodyHashPrefix + sha256Hex(body.str()) + "\n" +
                  body.str());
    if (st.isOk()) {
        ++stores_;
        crashPoint("cache.stored");
    }
    return st;
}

} // namespace xbs
