/**
 * @file
 * The aggregate sweep report: per-job outcomes plus the metrics of
 * every successful run, written atomically as report.json so a
 * degraded sweep still hands analysis scripts everything that did
 * complete.
 */

#ifndef XBS_BATCH_REPORT_HH
#define XBS_BATCH_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "batch/job.hh"
#include "common/status.hh"
#include "prof/build_info.hh"

namespace xbs
{

/** Aggregate counters over a set of job records. */
struct SweepSummary
{
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;    ///< final but not Ok
    std::size_t notRun = 0;    ///< never finalized (drained sweep)
    std::size_t cacheHits = 0; ///< Ok jobs served from the cache
    unsigned retries = 0;
    bool interrupted = false;
    double wallSeconds = 0.0;

    /** Per-class counts of finalized jobs, by jobClassName. */
    std::vector<std::pair<std::string, std::size_t>> classCounts;
};

SweepSummary summarizeSweep(const std::vector<JobRecord> &records,
                            bool interrupted, unsigned retries,
                            double wall_seconds);

/** Provenance stamped into the report (all optional, default off). */
struct SweepReportInfo
{
    bool hasBuild = false;       ///< emit a buildInfo object
    BuildInfo build;
    uint64_t intervalCycles = 0; ///< per-job interval window (0: off)
};

/** Serialize summary + per-job results as the report JSON. */
std::string renderSweepReport(const std::vector<JobRecord> &records,
                              const SweepSummary &summary,
                              const SweepReportInfo &info = {});

/** Atomically (re)write @p dir/report.json. */
Status writeSweepReport(const std::string &dir,
                        const std::vector<JobRecord> &records,
                        const SweepSummary &summary,
                        const SweepReportInfo &info = {});

/** Human-readable per-job table + summary line (xbatch stdout). */
void printSweepSummary(std::ostream &os,
                       const std::vector<JobRecord> &records,
                       const SweepSummary &summary);

} // namespace xbs

#endif // XBS_BATCH_REPORT_HH
