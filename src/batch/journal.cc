#include "batch/journal.hh"

#include <sstream>

#include "common/json.hh"

namespace xbs
{

void
writeJobMetricsFields(JsonWriter &jw, const JobMetrics &m)
{
    // Full precision: these values are read back (resume, cache
    // hits) and must stay bit-identical to the simulated originals
    // all the way into report.json.
    jw.fieldFull("bandwidth", m.bandwidth);
    jw.fieldFull("missRate", m.missRate);
    jw.fieldFull("overallIpc", m.overallIpc);
    jw.field("cycles", m.cycles);
    jw.field("totalUops", m.totalUops);
    if (m.attrib.has)
        writeAttribRollup(jw, m.attrib);
    if (m.stats.has) {
        jw.beginObject("stats");
        jw.field("windows", m.stats.windows);
        jw.field("windowCycles", m.stats.windowCycles);
        jw.fieldFull("bwMean", m.stats.bwMean);
        jw.fieldFull("bwVar", m.stats.bwVar);
        jw.fieldFull("bwLag1", m.stats.bwLag1);
        jw.field("ciValid", m.stats.ciValid);
        if (m.stats.ciValid) {
            jw.fieldFull("bwCi95", m.stats.bwCi95);
            jw.field("batches", m.stats.batches);
        }
        jw.field("phases", m.stats.phases);
        jw.endObject();
    }
}

JobMetrics
readJobMetricsFields(const JsonValue &v)
{
    JobMetrics m;
    if (const JsonValue *f = v.find("bandwidth"))
        m.bandwidth = f->asNumber();
    if (const JsonValue *f = v.find("missRate"))
        m.missRate = f->asNumber();
    if (const JsonValue *f = v.find("overallIpc"))
        m.overallIpc = f->asNumber();
    if (const JsonValue *f = v.find("cycles"))
        m.cycles = f->asUint();
    if (const JsonValue *f = v.find("totalUops"))
        m.totalUops = f->asUint();
    if (const JsonValue *f = v.find("attrib"))
        m.attrib = parseAttribRollup(*f);
    if (const JsonValue *s = v.find("stats"); s && s->isObject()) {
        m.stats.has = true;
        if (const JsonValue *f = s->find("windows"))
            m.stats.windows = f->asUint();
        if (const JsonValue *f = s->find("windowCycles"))
            m.stats.windowCycles = f->asUint();
        if (const JsonValue *f = s->find("bwMean"))
            m.stats.bwMean = f->asNumber();
        if (const JsonValue *f = s->find("bwVar"))
            m.stats.bwVar = f->asNumber();
        if (const JsonValue *f = s->find("bwLag1"))
            m.stats.bwLag1 = f->asNumber();
        if (const JsonValue *f = s->find("ciValid"))
            m.stats.ciValid = f->isBool() && f->boolValue;
        if (const JsonValue *f = s->find("bwCi95"))
            m.stats.bwCi95 = f->asNumber();
        if (const JsonValue *f = s->find("batches"))
            m.stats.batches = f->asUint();
        if (const JsonValue *f = s->find("phases"))
            m.stats.phases = f->asUint();
    }
    return m;
}

const char *
journalEventKindName(JournalEvent::Kind kind)
{
    switch (kind) {
      case JournalEvent::Kind::Submit: return "submit";
      case JournalEvent::Kind::Launch: return "launch";
      case JournalEvent::Kind::Result: return "result";
      case JournalEvent::Kind::Final:  return "final";
      case JournalEvent::Kind::Cancel: return "cancel";
    }
    return "?";
}

std::string
SweepJournal::manifestPath(const std::string &dir)
{
    return dir + "/manifest.json";
}

std::string
SweepJournal::journalPath(const std::string &dir)
{
    return dir + "/journal.jsonl";
}

Status
SweepJournal::writeManifest(const std::string &dir,
                            const SweepManifest &manifest)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/true);
        jw.beginObject();
        jw.field("version", (uint64_t)manifest.version);
        jw.field("xbsim", manifest.xbsim);
        jw.field("workers", (uint64_t)manifest.workers);
        jw.field("timeoutSec", manifest.timeoutSec);
        jw.field("maxRetries", (uint64_t)manifest.maxRetries);
        jw.field("backoffMs", (uint64_t)manifest.backoffMs);
        if (manifest.intervalCycles)
            jw.field("intervalCycles", manifest.intervalCycles);
        if (manifest.heartbeatSec > 0.0) {
            jw.field("heartbeatSec", manifest.heartbeatSec);
            jw.field("stallPeriods",
                     (uint64_t)manifest.stallPeriods);
        }
        if (manifest.perf)
            jw.field("perf", true);
        jw.beginArray("jobs");
        for (const JobSpec &job : manifest.jobs) {
            jw.beginObject();
            jw.field("id", (uint64_t)job.id);
            jw.beginArray("spec");
            for (const std::string &flag : job.run.toArgv())
                jw.field("", flag);
            jw.endArray();
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    return writeFileAtomic(manifestPath(dir), os.str());
}

Expected<SweepManifest>
SweepJournal::readManifest(const std::string &dir)
{
    const std::string path = manifestPath(dir);
    Expected<std::string> text = readFileToString(path);
    if (!text.ok())
        return text.status();

    JsonValue root;
    std::string err;
    if (!parseJson(text.value(), &root, &err)) {
        return Status::error("malformed manifest: " + err)
            .withFile(path);
    }
    if (!root.isObject())
        return Status::error("manifest is not an object")
            .withFile(path);

    SweepManifest m;
    if (const JsonValue *v = root.find("version"))
        m.version = (int)v->asUint();
    if (m.version != 1) {
        return Status::error("unsupported manifest version " +
                             std::to_string(m.version))
            .withFile(path);
    }
    if (const JsonValue *v = root.find("xbsim"))
        m.xbsim = v->asString();
    if (const JsonValue *v = root.find("workers"))
        m.workers = (unsigned)v->asUint();
    if (const JsonValue *v = root.find("timeoutSec"))
        m.timeoutSec = v->asNumber();
    if (const JsonValue *v = root.find("maxRetries"))
        m.maxRetries = (unsigned)v->asUint();
    if (const JsonValue *v = root.find("backoffMs"))
        m.backoffMs = (unsigned)v->asUint();
    if (const JsonValue *v = root.find("intervalCycles"))
        m.intervalCycles = v->asUint();
    if (const JsonValue *v = root.find("heartbeatSec"))
        m.heartbeatSec = v->asNumber();
    if (const JsonValue *v = root.find("stallPeriods"))
        m.stallPeriods = (unsigned)v->asUint();
    if (const JsonValue *v = root.find("perf"))
        m.perf = v->isBool() && v->boolValue;

    const JsonValue *jobs = root.find("jobs");
    if (!jobs || !jobs->isArray())
        return Status::error("manifest has no jobs array")
            .withFile(path);
    for (const JsonValue &jv : jobs->items) {
        JobSpec job;
        if (const JsonValue *v = jv.find("id"))
            job.id = (int)v->asUint();
        const JsonValue *spec = jv.find("spec");
        if (!spec || !spec->isArray()) {
            return Status::error("manifest job " +
                                 std::to_string(job.id) +
                                 " has no spec array").withFile(path);
        }
        std::vector<std::string> flags;
        for (const JsonValue &f : spec->items)
            flags.push_back(f.asString());
        Expected<RunSpec> run = RunSpec::fromArgv(flags);
        if (!run.ok()) {
            Status st = run.status();
            return st.withFile(path);
        }
        job.run = run.take();
        m.jobs.push_back(std::move(job));
    }
    return m;
}

Status
SweepJournal::open(const std::string &dir)
{
    dir_ = dir;
    return log_.open(journalPath(dir));
}

Status
SweepJournal::append(JournalEvent &event, bool durable)
{
    event.seq = ++seq_;
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        jw.field("seq", event.seq);
        jw.field("event", journalEventKindName(event.kind));
        jw.field("job", (int64_t)event.job);
        jw.field("attempt", (int64_t)event.attempt);
        if (event.kind == JournalEvent::Kind::Submit) {
            jw.beginArray("spec");
            for (const std::string &flag : event.spec)
                jw.field("", flag);
            jw.endArray();
            if (!event.tenant.empty())
                jw.field("tenant", event.tenant);
            if (event.priority != 0)
                jw.field("priority", (int64_t)event.priority);
        } else if (event.kind != JournalEvent::Kind::Launch) {
            jw.field("class", jobClassName(event.cls));
            jw.field("exit", (int64_t)event.exitCode);
            jw.field("signal", (int64_t)event.termSignal);
            jw.fieldFull("seconds", event.seconds);
            if (event.cached)
                jw.field("cached", true);
            if (event.hasMetrics)
                writeJobMetricsFields(jw, event.metrics);
            if (event.hasUsage) {
                jw.field("maxRssKb", event.usage.maxRssKb);
                jw.field("userSec", event.usage.userSec);
                jw.field("sysSec", event.usage.sysSec);
                if (event.usage.inBlock)
                    jw.field("inBlock", event.usage.inBlock);
                if (event.usage.outBlock)
                    jw.field("outBlock", event.usage.outBlock);
            }
            if (event.hasPerf) {
                // Full precision like the paper metrics: replayed
                // perf counters must round-trip bit-identically into
                // a resumed report.
                jw.fieldFull("perfCycles", event.perf.cycles);
                jw.fieldFull("perfInstructions",
                             event.perf.instructions);
                jw.fieldFull("perfCacheRefs", event.perf.cacheRefs);
                jw.fieldFull("perfCacheMisses",
                             event.perf.cacheMisses);
                jw.fieldFull("perfBranches", event.perf.branches);
                jw.fieldFull("perfBranchMisses",
                             event.perf.branchMisses);
            }
            if (!event.note.empty())
                jw.field("note", event.note);
        }
        jw.endObject();
    }
    return log_.append(os.str(), durable);
}

Status
SweepJournal::sync()
{
    return log_.sync();
}

Expected<std::vector<JournalEvent>>
SweepJournal::replay(const std::string &dir)
{
    const std::string path = journalPath(dir);
    Expected<std::string> text = readFileToString(path);
    if (!text.ok())
        return text.status();

    std::vector<JournalEvent> events;
    std::istringstream is(text.value());
    std::string line;
    uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        bool at_tail = is.peek() == std::istream::traits_type::eof();
        // A crash can tear only the final line (O_APPEND single
        // write); getline also drops a missing trailing newline
        // there. Skip a malformed tail, reject corruption anywhere
        // else.
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, &v, &err) || !v.isObject()) {
            if (at_tail)
                break;
            return Status::error("malformed journal line " +
                                 std::to_string(lineno) + ": " + err)
                .withFile(path);
        }
        JournalEvent ev;
        const JsonValue *kind = v.find("event");
        if (!kind) {
            if (at_tail)
                break;
            return Status::error("journal line " +
                                 std::to_string(lineno) +
                                 " has no event field").withFile(path);
        }
        const std::string &k = kind->asString();
        if (k == "submit") {
            ev.kind = JournalEvent::Kind::Submit;
        } else if (k == "launch") {
            ev.kind = JournalEvent::Kind::Launch;
        } else if (k == "result") {
            ev.kind = JournalEvent::Kind::Result;
        } else if (k == "final") {
            ev.kind = JournalEvent::Kind::Final;
        } else if (k == "cancel") {
            ev.kind = JournalEvent::Kind::Cancel;
        } else {
            return Status::error("journal line " +
                                 std::to_string(lineno) +
                                 ": unknown event '" + k + "'")
                .withFile(path);
        }
        if (const JsonValue *f = v.find("seq"))
            ev.seq = f->asUint();
        if (const JsonValue *f = v.find("job"))
            ev.job = (int)f->asNumber();
        if (const JsonValue *f = v.find("attempt"))
            ev.attempt = (int)f->asNumber();
        if (const JsonValue *f = v.find("class")) {
            Expected<JobClass> cls = jobClassFromName(f->asString());
            if (!cls.ok()) {
                Status st = cls.status();
                return st.withFile(path);
            }
            ev.cls = cls.value();
        }
        if (const JsonValue *f = v.find("exit"))
            ev.exitCode = (int)f->asNumber();
        if (const JsonValue *f = v.find("signal"))
            ev.termSignal = (int)f->asNumber();
        if (const JsonValue *f = v.find("seconds"))
            ev.seconds = f->asNumber();
        if (const JsonValue *f = v.find("cached"))
            ev.cached = f->isBool() && f->boolValue;
        if (const JsonValue *f = v.find("spec")) {
            for (const JsonValue &flag : f->items)
                ev.spec.push_back(flag.asString());
        }
        if (const JsonValue *f = v.find("tenant"))
            ev.tenant = f->asString();
        if (const JsonValue *f = v.find("priority"))
            ev.priority = (int)f->asNumber();
        if (v.find("bandwidth") || v.find("cycles")) {
            ev.hasMetrics = true;
            ev.metrics = readJobMetricsFields(v);
        }
        if (const JsonValue *f = v.find("maxRssKb")) {
            ev.hasUsage = true;
            ev.usage.maxRssKb = f->asUint();
            if (const JsonValue *u = v.find("userSec"))
                ev.usage.userSec = u->asNumber();
            if (const JsonValue *u = v.find("sysSec"))
                ev.usage.sysSec = u->asNumber();
            if (const JsonValue *u = v.find("inBlock"))
                ev.usage.inBlock = u->asUint();
            if (const JsonValue *u = v.find("outBlock"))
                ev.usage.outBlock = u->asUint();
        }
        if (const JsonValue *f = v.find("perfCycles")) {
            ev.hasPerf = true;
            ev.perf.cycles = f->asNumber();
            if (const JsonValue *u = v.find("perfInstructions"))
                ev.perf.instructions = u->asNumber();
            if (const JsonValue *u = v.find("perfCacheRefs"))
                ev.perf.cacheRefs = u->asNumber();
            if (const JsonValue *u = v.find("perfCacheMisses"))
                ev.perf.cacheMisses = u->asNumber();
            if (const JsonValue *u = v.find("perfBranches"))
                ev.perf.branches = u->asNumber();
            if (const JsonValue *u = v.find("perfBranchMisses"))
                ev.perf.branchMisses = u->asNumber();
        }
        if (const JsonValue *f = v.find("note"))
            ev.note = f->asString();
        events.push_back(std::move(ev));
    }
    return events;
}

} // namespace xbs
