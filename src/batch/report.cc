#include "batch/report.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/fs.hh"
#include "common/json.hh"

namespace xbs
{

SweepSummary
summarizeSweep(const std::vector<JobRecord> &records, bool interrupted,
               unsigned retries, double wall_seconds)
{
    SweepSummary s;
    s.total = records.size();
    s.retries = retries;
    s.interrupted = interrupted;
    s.wallSeconds = wall_seconds;

    std::map<std::string, std::size_t> by_class;
    for (const JobRecord &rec : records) {
        if (!rec.done) {
            ++s.notRun;
            continue;
        }
        if (rec.cls == JobClass::Ok)
            ++s.ok;
        else
            ++s.failed;
        if (rec.cached)
            ++s.cacheHits;
        ++by_class[jobClassName(rec.cls)];
    }
    s.classCounts.assign(by_class.begin(), by_class.end());
    return s;
}

std::string
renderSweepReport(const std::vector<JobRecord> &records,
                  const SweepSummary &summary,
                  const SweepReportInfo &info)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/true);
        jw.beginObject();
        jw.field("version", (uint64_t)1);
        jw.field("interrupted", summary.interrupted);
        if (info.hasBuild)
            writeBuildInfoJson(jw, info.build);
        if (info.intervalCycles)
            jw.field("intervalCycles", info.intervalCycles);

        jw.beginObject("summary");
        jw.field("total", (uint64_t)summary.total);
        jw.field("ok", (uint64_t)summary.ok);
        jw.field("failed", (uint64_t)summary.failed);
        jw.field("notRun", (uint64_t)summary.notRun);
        jw.field("cacheHits", (uint64_t)summary.cacheHits);
        jw.field("retries", (uint64_t)summary.retries);
        jw.beginObject("classes");
        for (const auto &cc : summary.classCounts)
            jw.field(cc.first, (uint64_t)cc.second);
        jw.endObject();
        jw.endObject();

        // Everything timing-dependent lives in this one object (and
        // the per-job "seconds" field) so resumed sweeps can be
        // compared to uninterrupted ones field-by-field.
        jw.beginObject("timing");
        jw.field("wallSeconds", summary.wallSeconds);
        jw.endObject();

        jw.beginArray("jobs");
        for (const JobRecord &rec : records) {
            jw.beginObject();
            jw.field("id", (uint64_t)rec.spec.id);
            jw.field("workload", rec.spec.run.workload);
            jw.field("frontend", rec.spec.run.frontend);
            jw.field("capacity", rec.spec.run.capacity);
            if (rec.spec.run.ways != 0)
                jw.field("ways", rec.spec.run.ways);
            if (rec.spec.run.insts != 0)
                jw.field("insts", rec.spec.run.insts);
            jw.field("done", rec.done);
            if (rec.done)
                jw.field("class", jobClassName(rec.cls));
            jw.field("attempts", (int64_t)rec.attempts);
            jw.field("exit", (int64_t)rec.exitCode);
            jw.field("signal", (int64_t)rec.termSignal);
            jw.field("replayed", rec.replayed);
            if (rec.cached)
                jw.field("cached", true);
            jw.field("seconds", rec.seconds);
            if (rec.hasMetrics) {
                jw.beginObject("metrics");
                jw.field("bandwidth", rec.metrics.bandwidth);
                jw.field("missRate", rec.metrics.missRate);
                jw.field("overallIpc", rec.metrics.overallIpc);
                jw.field("cycles", rec.metrics.cycles);
                jw.field("totalUops", rec.metrics.totalUops);
                if (rec.metrics.attrib.has)
                    writeAttribRollup(jw, rec.metrics.attrib);
                if (rec.metrics.stats.has) {
                    const JobStats &st = rec.metrics.stats;
                    jw.beginObject("stats");
                    jw.field("windows", st.windows);
                    jw.field("windowCycles", st.windowCycles);
                    jw.field("bwMean", st.bwMean);
                    jw.field("bwVar", st.bwVar);
                    jw.field("bwLag1", st.bwLag1);
                    jw.field("ciValid", st.ciValid);
                    if (st.ciValid) {
                        jw.field("bwCi95", st.bwCi95);
                        jw.field("batches", st.batches);
                    }
                    jw.field("phases", st.phases);
                    jw.endObject();
                }
                jw.endObject();
            }
            if (rec.hasUsage) {
                jw.beginObject("rusage");
                jw.field("maxRssKb", rec.usage.maxRssKb);
                jw.field("userSec", rec.usage.userSec);
                jw.field("sysSec", rec.usage.sysSec);
                if (rec.usage.inBlock || rec.usage.outBlock) {
                    jw.field("inBlock", rec.usage.inBlock);
                    jw.field("outBlock", rec.usage.outBlock);
                }
                jw.endObject();
            }
            if (rec.hasPerf) {
                jw.beginObject("perf");
                jw.field("cycles", rec.perf.cycles);
                jw.field("instructions", rec.perf.instructions);
                jw.field("cacheRefs", rec.perf.cacheRefs);
                jw.field("cacheMisses", rec.perf.cacheMisses);
                jw.field("branches", rec.perf.branches);
                jw.field("branchMisses", rec.perf.branchMisses);
                jw.field("ipc", rec.perf.ipc());
                jw.field("cacheMpki", rec.perf.cacheMpki());
                jw.field("branchMissRate", rec.perf.branchMissRate());
                jw.endObject();
            }
            if (!rec.note.empty())
                jw.field("note", rec.note);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    return os.str();
}

Status
writeSweepReport(const std::string &dir,
                 const std::vector<JobRecord> &records,
                 const SweepSummary &summary,
                 const SweepReportInfo &info)
{
    return writeFileAtomic(dir + "/report.json",
                           renderSweepReport(records, summary, info));
}

void
printSweepSummary(std::ostream &os,
                  const std::vector<JobRecord> &records,
                  const SweepSummary &summary)
{
    for (const JobRecord &rec : records) {
        char line[256];
        if (!rec.done) {
            std::snprintf(line, sizeof(line), "  %-28s not run",
                          rec.spec.run.label().c_str());
        } else if (rec.cls == JobClass::Ok && rec.hasMetrics) {
            std::snprintf(line, sizeof(line),
                          "  %-28s ok       bw=%6.3f miss=%5.3f "
                          "(%d attempt%s%s%s)",
                          rec.spec.run.label().c_str(),
                          rec.metrics.bandwidth, rec.metrics.missRate,
                          rec.attempts, rec.attempts == 1 ? "" : "s",
                          rec.replayed ? ", replayed" : "",
                          rec.cached ? ", cached" : "");
        } else {
            std::snprintf(line, sizeof(line),
                          "  %-28s %-8s (%d attempt%s%s)%s%s",
                          rec.spec.run.label().c_str(),
                          jobClassName(rec.cls), rec.attempts,
                          rec.attempts == 1 ? "" : "s",
                          rec.replayed ? ", replayed" : "",
                          rec.note.empty() ? "" : ": ",
                          rec.note.c_str());
        }
        os << line << "\n";
    }
    os << "sweep: " << summary.ok << "/" << summary.total << " ok";
    if (summary.failed > 0)
        os << ", " << summary.failed << " failed";
    if (summary.notRun > 0)
        os << ", " << summary.notRun << " not run";
    if (summary.cacheHits > 0)
        os << ", " << summary.cacheHits << " cached";
    if (summary.retries > 0)
        os << ", " << summary.retries << " retr"
           << (summary.retries == 1 ? "y" : "ies");
    if (summary.interrupted)
        os << " [interrupted]";
    char secs[32];
    std::snprintf(secs, sizeof(secs), " (%.1fs)",
                  summary.wallSeconds);
    os << secs << "\n";
}

} // namespace xbs
