/**
 * @file
 * The sweep supervisor: a bounded pool of isolated child processes
 * under a watchdog.
 *
 * Lifecycle of one job (see docs/MODEL.md "Batch execution"):
 *
 *     pending -> running -> { ok | usage | data | audit }   final
 *                        -> { timeout | crash }  -> retry (bounded,
 *                               exponential backoff) -> ... -> final
 *                        -> interrupted (supervisor drain; the
 *                               attempt is free and the job is
 *                               re-queued by --resume)
 *
 * The watchdog enforces a per-job wall-clock deadline: SIGTERM first
 * (a healthy xbsim drains at the next cycle boundary and flushes
 * partial output), SIGKILL after a grace period for children too
 * wedged to react. With live telemetry enabled (heartbeatDir), the
 * wall clock is demoted to a bootstrap guard: once a child's first
 * heartbeat arrives, supervision switches to *progress* — the job is
 * killed (and retried, as `stalled`) only after stallPeriods
 * heartbeat periods with no uop progress, so a long-but-progressing
 * job outlives any fixed deadline while a hung-but-alive child is
 * caught within a couple of periods. A child that never heartbeats
 * (hung before main, pre-telemetry binary) still falls to the
 * wall-clock deadline. SIGINT/SIGTERM on the supervisor itself stops
 * launching, TERMs the workers, waits for them, and finalizes the
 * journal — the sweep is resumable from exactly that point.
 *
 * Every transition is journaled before the next action, so a SIGKILL
 * of the supervisor at any instant loses at most the in-flight
 * attempts, never a completed result.
 */

#ifndef XBS_BATCH_SCHEDULER_HH
#define XBS_BATCH_SCHEDULER_HH

#include <chrono>
#include <csignal>
#include <functional>
#include <vector>

#include "batch/job.hh"
#include "batch/journal.hh"
#include "batch/subprocess.hh"
#include "obs/span.hh"

namespace xbs
{

struct SchedulerOptions
{
    std::string xbsimPath;       ///< child binary
    unsigned workers = 2;        ///< --jobs N
    double timeoutSec = 300.0;   ///< per-job wall-clock deadline
    unsigned maxRetries = 1;     ///< extra attempts for transients
    unsigned backoffMs = 200;    ///< base retry delay (doubles)
    double graceSec = 2.0;       ///< SIGTERM -> SIGKILL escalation
    unsigned pollMs = 10;        ///< supervisor poll interval

    /// @{ Live telemetry. A non-empty heartbeatDir makes every
    ///    launch pass --heartbeat=<dir>/job-<id>.json to the child
    ///    and arms the progress-aware stall detector (see the file
    ///    comment); empty keeps the wall-clock-only watchdog.
    std::string heartbeatDir;
    double heartbeatSec = 1.0;   ///< child beat period, seconds
    unsigned stallPeriods = 4;   ///< no-progress beats before a kill
    /// @}

    /** Optional span recorder for the unified sweep timeline
     *  (obs/trace_merge); nullptr disables. */
    SweepSpanLog *spanLog = nullptr;

    /** Raised by a signal handler to request a drain (see
     *  common/signals.hh); nullptr disables. */
    const volatile std::sig_atomic_t *stopFlag = nullptr;

    /** Progress callback, fired at each job's final transition. */
    std::function<void(const JobRecord &)> onFinal;

    /** Extra child flags appended per launch attempt (e.g. interval
     *  stats or event-trace output paths; attempt is 1-based so
     *  retries can write distinct files); nullptr/empty disables. */
    std::function<std::vector<std::string>(const JobSpec &,
                                           int attempt)> extraArgs;
};

class SweepScheduler
{
  public:
    /** @param journal optional (tests may run journal-less). */
    SweepScheduler(SchedulerOptions opts, std::vector<JobSpec> jobs,
                   SweepJournal *journal);

    /**
     * Apply a replayed journal before run(): jobs with a final event
     * are marked done (their recorded outcome and metrics stand);
     * jobs with launches or transient results but no final are
     * re-queued. Returns the last seq seen so the journal can
     * continue numbering.
     */
    uint64_t restore(const std::vector<JournalEvent> &events);

    /**
     * Run the sweep to completion or until drained by the stop flag.
     * Always returns (graceful degradation): individual failures are
     * recorded, never propagated.
     *
     * @return false when the sweep was interrupted mid-flight
     */
    bool run();

    const std::vector<JobRecord> &records() const { return records_; }

    /** Every job finished with class Ok. */
    bool allOk() const;

    /** Jobs finished (final) so far. */
    std::size_t doneCount() const;

    /** Transient retries performed by this supervisor instance. */
    unsigned totalRetries() const { return retries_; }

    bool interrupted() const { return interrupted_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Running
    {
        Child child;
        std::size_t idx = 0;       ///< index into records_
        int attempt = 1;
        unsigned slot = 0;         ///< worker slot (span timeline)
        Clock::time_point start;
        Clock::time_point deadline;
        bool termSent = false;
        Clock::time_point killAt;
        bool timedOut = false;

        /// @{ Stall detector state (heartbeatDir only).
        bool hbArmed = false;      ///< first heartbeat parsed
        uint64_t hbUops = 0;       ///< last observed uop count
        std::string hbPhase;       ///< last observed phase
        Clock::time_point lastProgress;
        Clock::time_point nextHbPoll;
        bool stalled = false;      ///< stall kill initiated
        /// @}
    };

    void launch(std::size_t idx);
    void pollHeartbeat(Running &run, Clock::time_point now);
    void handleExit(Running &run, int raw_status);
    void finalize(std::size_t idx, JobClass cls, bool has_metrics,
                  const JobMetrics &metrics);
    void journalAppend(JournalEvent &event);
    bool stopRequested() const
    {
        return opts_.stopFlag && *opts_.stopFlag != 0;
    }

    SchedulerOptions opts_;
    std::vector<JobRecord> records_;
    SweepJournal *journal_;

    std::vector<std::size_t> pending_;  ///< FIFO of records_ indices
    std::vector<Clock::time_point> eligibleAt_;  ///< backoff gates
    std::vector<Running> running_;
    std::vector<char> slotBusy_;        ///< worker-slot occupancy
    unsigned retries_ = 0;
    bool draining_ = false;
    bool interrupted_ = false;
};

} // namespace xbs

#endif // XBS_BATCH_SCHEDULER_HH
