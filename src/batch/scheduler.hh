/**
 * @file
 * The sweep supervisor: a bounded pool of isolated child processes
 * under a watchdog.
 *
 * Lifecycle of one job (see docs/MODEL.md "Batch execution"):
 *
 *     pending -> running -> { ok | usage | data | audit }   final
 *                        -> { timeout | crash }  -> retry (bounded,
 *                               exponential backoff) -> ... -> final
 *                        -> interrupted (supervisor drain; the
 *                               attempt is free and the job is
 *                               re-queued by --resume)
 *
 * The watchdog enforces a per-job wall-clock deadline: SIGTERM first
 * (a healthy xbsim drains at the next cycle boundary and flushes
 * partial output), SIGKILL after a grace period for children too
 * wedged to react. With live telemetry enabled (heartbeatDir), the
 * wall clock is demoted to a bootstrap guard: once a child's first
 * heartbeat arrives, supervision switches to *progress* — the job is
 * killed (and retried, as `stalled`) only after stallPeriods
 * heartbeat periods with no uop progress, so a long-but-progressing
 * job outlives any fixed deadline while a hung-but-alive child is
 * caught within a couple of periods. A child that never heartbeats
 * (hung before main, pre-telemetry binary) still falls to the
 * wall-clock deadline. SIGINT/SIGTERM on the supervisor itself stops
 * launching, TERMs the workers, waits for them, and finalizes the
 * journal — the sweep is resumable from exactly that point.
 *
 * Every transition is journaled before the next action, so a SIGKILL
 * of the supervisor at any instant loses at most the in-flight
 * attempts, never a completed result.
 */

#ifndef XBS_BATCH_SCHEDULER_HH
#define XBS_BATCH_SCHEDULER_HH

#include <chrono>
#include <csignal>
#include <functional>
#include <map>
#include <vector>

#include "batch/job.hh"
#include "batch/journal.hh"
#include "batch/subprocess.hh"
#include "obs/span.hh"

namespace xbs
{

class ResultCache;

struct SchedulerOptions
{
    std::string xbsimPath;       ///< child binary
    unsigned workers = 2;        ///< --jobs N
    double timeoutSec = 300.0;   ///< per-job wall-clock deadline
    unsigned maxRetries = 1;     ///< extra attempts for transients
    unsigned backoffMs = 200;    ///< base retry delay (doubles)
    double graceSec = 2.0;       ///< SIGTERM -> SIGKILL escalation
    unsigned pollMs = 10;        ///< supervisor poll interval

    /// @{ Live telemetry. A non-empty heartbeatDir makes every
    ///    launch pass --heartbeat=<dir>/job-<id>.json to the child
    ///    and arms the progress-aware stall detector (see the file
    ///    comment); empty keeps the wall-clock-only watchdog.
    std::string heartbeatDir;
    double heartbeatSec = 1.0;   ///< child beat period, seconds
    unsigned stallPeriods = 4;   ///< no-progress beats before a kill
    /// @}

    /** Optional span recorder for the unified sweep timeline
     *  (obs/trace_merge); nullptr disables. */
    SweepSpanLog *spanLog = nullptr;

    /** Raised by a signal handler to request a drain (see
     *  common/signals.hh); nullptr disables. */
    const volatile std::sig_atomic_t *stopFlag = nullptr;

    /** Progress callback, fired at each job's final transition. */
    std::function<void(const JobRecord &)> onFinal;

    /** Extra child flags appended per launch attempt (e.g. interval
     *  stats or event-trace output paths; attempt is 1-based so
     *  retries can write distinct files); nullptr/empty disables. */
    std::function<std::vector<std::string>(const JobSpec &,
                                           int attempt)> extraArgs;

    /**
     * Content-addressed result cache (batch/result_cache.hh);
     * nullptr disables. With a cache, a job whose key hits is
     * finalized as `cached` at launch time without occupying a
     * worker slot (its Final journal lines are group-committed once
     * per step), and every Ok simulation stores its entry on the way
     * to Final.
     */
    ResultCache *cache = nullptr;
};

class SweepScheduler
{
  public:
    /** @param journal optional (tests may run journal-less). */
    SweepScheduler(SchedulerOptions opts, std::vector<JobSpec> jobs,
                   SweepJournal *journal);

    /**
     * Apply a replayed journal before run(): jobs with a final event
     * are marked done (their recorded outcome and metrics stand);
     * jobs with launches or transient results but no final are
     * re-queued. Returns the last seq seen so the journal can
     * continue numbering.
     */
    uint64_t restore(const std::vector<JournalEvent> &events);

    /**
     * Run the sweep to completion or until drained by the stop flag.
     * Always returns (graceful degradation): individual failures are
     * recorded, never propagated. Implemented as a loop over step().
     *
     * @return false when the sweep was interrupted mid-flight
     */
    bool run();

    /**
     * One supervisor iteration: honor the stop flag, launch eligible
     * pending jobs into free slots (serving cache hits inline,
     * without a slot), pump/reap/watchdog the running children, and
     * group-commit any batched cache-hit finals. The service daemon
     * (src/svc) pumps this between socket polls; run() is this in a
     * sleep loop.
     */
    void step();

    /**
     * Service mode: admit one job after construction. Journals a
     * durable Submit event *before* the job exists in memory — the
     * daemon only acks a submission once this returns, and replaying
     * the Submit events reconstructs the matrix on restart. With
     * @p durable false the caller owns the sync barrier (group
     * commit across a burst of submissions) via journalSync().
     *
     * @return the assigned job id
     */
    Expected<int> submit(const RunSpec &run,
                         const std::string &tenant = "",
                         int priority = 0, bool durable = true);

    /**
     * Service mode: cancel a job by id. A pending job is finalized
     * as Canceled immediately; a running one gets the TERM-then-KILL
     * escalation and finalizes as Canceled when reaped. Fails with
     * NotFound for unknown ids and with a plain error for jobs
     * already final.
     */
    Status cancel(int job_id);

    /** Group-commit barrier for durable=false submissions. */
    Status journalSync();

    /** No running children and nothing pending (the service idles;
     *  a batch run is finished). */
    bool idle() const { return running_.empty() && pending_.empty(); }

    std::size_t runningCount() const { return running_.size(); }
    std::size_t pendingCount() const { return pending_.size(); }

    const std::vector<JobRecord> &records() const { return records_; }

    /** Every job finished with class Ok. */
    bool allOk() const;

    /** Jobs finished (final) so far. */
    std::size_t doneCount() const;

    /** Transient retries performed by this supervisor instance. */
    unsigned totalRetries() const { return retries_; }

    /** Jobs served from the result cache by this instance. */
    uint64_t cacheHits() const { return cacheHits_; }

    /// @{ Cumulative service counters (xbatchd `metrics` verb).
    uint64_t submits() const { return submits_; }
    uint64_t cacheMisses() const { return cacheMisses_; }
    uint64_t stallKills() const { return stalls_; }
    uint64_t cancelCount() const { return cancels_; }
    /** Pending-queue depth per tenant (keys present tenants only). */
    std::map<std::string, uint64_t> pendingByTenant() const;
    /// @}

    bool interrupted() const { return interrupted_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Running
    {
        Child child;
        std::size_t idx = 0;       ///< index into records_
        int attempt = 1;
        unsigned slot = 0;         ///< worker slot (span timeline)
        Clock::time_point start;
        Clock::time_point deadline;
        bool termSent = false;
        Clock::time_point killAt;
        bool timedOut = false;

        /// @{ Stall detector state (heartbeatDir only).
        bool hbArmed = false;      ///< first heartbeat parsed
        uint64_t hbUops = 0;       ///< last observed uop count
        std::string hbPhase;       ///< last observed phase
        Clock::time_point lastProgress;
        Clock::time_point nextHbPoll;
        bool stalled = false;      ///< stall kill initiated
        bool canceled = false;     ///< cancel kill initiated
        /// @}

        /// Cache key hex while this attempt is in flight (empty if
        /// the cache is off): twins with the same key defer instead
        /// of simulating the same cell twice.
        std::string cacheKeyHex;
    };

    void launch(std::size_t idx);
    bool tryServeFromCache(std::size_t idx, std::string *key_hex);
    void storeToCache(const JobRecord &rec);
    std::size_t pickPending(Clock::time_point now);
    void pollHeartbeat(Running &run, Clock::time_point now);
    void handleExit(Running &run, int raw_status);
    void finalize(std::size_t idx, JobClass cls, bool has_metrics,
                  const JobMetrics &metrics, bool durable = true);
    void journalAppend(JournalEvent &event, bool durable = true);
    bool stopRequested() const
    {
        return opts_.stopFlag && *opts_.stopFlag != 0;
    }

    SchedulerOptions opts_;
    std::vector<JobRecord> records_;
    SweepJournal *journal_;

    std::vector<std::size_t> pending_;  ///< FIFO of records_ indices
    std::vector<Clock::time_point> eligibleAt_;  ///< backoff gates
    std::vector<Running> running_;
    std::vector<char> slotBusy_;        ///< worker-slot occupancy
    /// Fair-share bookkeeping: launches granted per tenant, so the
    /// pending scan can favor the least-served tenant within a
    /// priority class.
    std::map<std::string, uint64_t> tenantServed_;
    /// Duplicate coalescing: cache-key hex -> records_ index of the
    /// job currently simulating that cell. A duplicate submission
    /// whose key is here is re-queued with a short delay instead of
    /// launching; when the primary stores its entry the duplicate's
    /// next launch is a cache hit. Crash-safe by construction: the
    /// deferred job is just pending, and replay re-queues it.
    std::map<std::string, std::size_t> inflightByKey_;
    int nextId_ = 0;                    ///< next submit() job id
    unsigned retries_ = 0;
    uint64_t cacheHits_ = 0;
    uint64_t cacheMisses_ = 0;
    uint64_t submits_ = 0;
    uint64_t stalls_ = 0;
    uint64_t cancels_ = 0;
    unsigned unsyncedFinals_ = 0;       ///< batched cache-hit finals
    bool draining_ = false;
    bool interrupted_ = false;
};

} // namespace xbs

#endif // XBS_BATCH_SCHEDULER_HH
