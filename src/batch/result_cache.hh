/**
 * @file
 * Content-addressed result cache: identical jobs are served in
 * microseconds instead of re-simulated.
 *
 * A cache key names everything that determines a run's paper
 * metrics:
 *
 *   - the *canonical* RunSpec: the spec is round-tripped through its
 *     argv encoding (the same one the manifest and journal use) so
 *     two submissions that mean the same run hash the same, and
 *     insts=0 is resolved to the effective default trace length
 *     (which env vars like XBS_FAST change) before hashing;
 *   - the workload's content hash: every WorkloadProfile field of
 *     the catalog entry, so retuning a profile invalidates exactly
 *     that workload's entries;
 *   - the build hash: full BuildInfo provenance, so a new compiler,
 *     build type, or source revision never serves stale metrics.
 *
 * Entries are stored under <dir>/objects/<aa>/<hex> via the
 * tmp+fsync+rename discipline (common/fs), guarded by a SHA-256 of
 * the body on the first line. A torn, truncated, or bit-rotted
 * entry fails the guard and is treated as a miss (and deleted), so
 * corruption costs one re-simulation, never a wrong result. Only
 * JobClass::Ok results with metrics are cached — failures are
 * diagnoses of a run, not properties of the spec.
 */

#ifndef XBS_BATCH_RESULT_CACHE_HH
#define XBS_BATCH_RESULT_CACHE_HH

#include <cstdint>
#include <string>

#include "batch/job.hh"
#include "common/status.hh"
#include "sim/config.hh"

namespace xbs
{

/** The derived address of one (spec x workload x build) result. */
struct CacheKey
{
    std::string spec;          ///< canonical argv, newline-joined
    std::string workloadHash;  ///< sha256 of the profile fields
    std::string buildHash;     ///< sha256 of BuildInfo fields
    /** sha256 of the restored checkpoint file's bytes (empty for a
     *  cold start). Content, not path: a warm run keys on *what* it
     *  restored, so it never aliases a cold run or a run restored
     *  from a different live-point, while re-checkpointing the same
     *  bytes under a new name still hits. */
    std::string ckptDigest;
    std::string hex;           ///< sha256 over the components above

    bool valid() const { return !hex.empty(); }
};

/** What a hit returns (everything the report needs). */
struct CacheEntry
{
    std::string label;    ///< RunSpec label of the producer
    double seconds = 0.0; ///< producer's simulation wall time
    JobMetrics metrics;
};

/** Hash every generation-relevant field of @p profile's catalog
 *  entry; error for unknown workloads. */
Expected<std::string> workloadContentHash(const std::string &name);

/** This binary's BuildInfo hash (cached after the first call). */
const std::string &buildInfoHash();

/** Derive the full cache key for @p run. */
Expected<CacheKey> makeCacheKey(const RunSpec &run);

class ResultCache
{
  public:
    /** Create/attach the store under @p dir. */
    Status open(const std::string &dir);

    bool isOpen() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Fetch the entry for @p key. NotFound-coded status on a clean
     * miss; Corrupt-coded status when an entry existed but failed
     * its integrity guard (it is unlinked so the next store gets a
     * clean slate). Either way the caller re-simulates.
     */
    Expected<CacheEntry> lookup(const CacheKey &key);

    /** Durably store @p entry under @p key (atomic replace). */
    Status store(const CacheKey &key, const CacheEntry &entry);

    /// @{ Counters for reports and the ctl status op.
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t corrupt() const { return corrupt_; }
    uint64_t stores() const { return stores_; }
    /// @}

    /** Entry path for @p key (exposed for tests and tooling). */
    std::string entryPath(const CacheKey &key) const;

  private:
    std::string dir_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t corrupt_ = 0;
    uint64_t stores_ = 0;
};

} // namespace xbs

#endif // XBS_BATCH_RESULT_CACHE_HH
