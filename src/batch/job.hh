/**
 * @file
 * Batch job model: what one cell of a sweep matrix is (JobSpec), how
 * a finished child process is classified (JobClass), and what the
 * supervisor remembers about it (JobRecord).
 *
 * The classification maps xbsim's exit-code taxonomy (see
 * common/status.hh) plus the two supervisor-side outcomes — timeout
 * and failure to spawn — onto retry policy: crashes and timeouts are
 * transient (a wedged machine, a scheduling hiccup, a livelock that a
 * different interleaving avoids) and are retried with exponential
 * backoff; usage, data, and audit failures are deterministic
 * properties of the job and retrying them would only burn time.
 */

#ifndef XBS_BATCH_JOB_HH
#define XBS_BATCH_JOB_HH

#include <string>
#include <vector>

#include "attrib/rollup.hh"
#include "common/status.hh"
#include "sim/config.hh"

namespace xbs
{

/** One cell of the sweep matrix. */
struct JobSpec
{
    int id = 0;
    RunSpec run;

    /** Child argv: the xbsim binary, the run flags, and --json so
     *  the supervisor can parse metrics off the child's stdout. */
    std::vector<std::string> argv(const std::string &xbsim) const;
};

/** Terminal classification of one job attempt. */
enum class JobClass
{
    Ok,           ///< exit 0
    Usage,        ///< exit 1: bad flags / unknown names
    Data,         ///< exit 2: malformed input (corrupt trace, ...)
    Audit,        ///< exit 3: invariant/oracle violations
    Interrupted,  ///< exit 5: child drained on supervisor shutdown
    Timeout,      ///< wall-clock deadline hit; watchdog killed it
    Stalled,      ///< alive but no uop progress for K heartbeats
    Crash,        ///< died on a signal (or an unknown exit code)
    Spawn,        ///< fork/exec failed (exit 127 or pipe error)
    Resource,     ///< transient host exhaustion (ENOSPC/EAGAIN/...)
    Canceled,     ///< canceled via the service before completion
};

const char *jobClassName(JobClass cls);

/** Inverse of jobClassName (for journal replay). */
Expected<JobClass> jobClassFromName(const std::string &name);

/** Transient classes are retried; deterministic ones are not. */
bool jobClassRetryable(JobClass cls);

/**
 * Map a reaped child to its class.
 *
 * @param timed_out   the watchdog initiated the kill: whatever the
 *                    child managed to report, the attempt is a
 *                    Timeout (a drained child exits 5, an unreactive
 *                    one dies on SIGKILL; both took too long)
 * @param stalled     the stall detector initiated the kill (alive
 *                    but no uop progress for K heartbeat periods);
 *                    takes precedence over everything the child
 *                    reported on its way down, like timed_out
 * @param exited      WIFEXITED
 * @param exit_code   WEXITSTATUS when exited
 * @param term_signal WTERMSIG when signaled
 */
JobClass classifyOutcome(bool timed_out, bool stalled, bool exited,
                         int exit_code, int term_signal);

/**
 * Make arbitrary child stderr safe for one JSONL journal line and
 * the report: strip control characters (a binary stderr must never
 * embed a newline or escape into the journal) and truncate to
 * @p max_len bytes with a "..." marker.
 */
std::string sanitizeNote(const std::string &text,
                         std::size_t max_len = 160);

/** Streaming-statistics summary parsed from the child's "stats" and
 *  "phases" JSON blocks (present when the child ran with an interval
 *  sampler attached; has==false otherwise). Carries the n that any
 *  statistical comparison downstream needs. */
struct JobStats
{
    bool has = false;
    uint64_t windows = 0;     ///< interval windows observed
    uint64_t windowCycles = 0;///< window length in cycles
    double bwMean = 0.0;      ///< mean window bandwidth
    double bwVar = 0.0;
    double bwLag1 = 0.0;
    bool ciValid = false;     ///< false: insufficientData
    double bwCi95 = 0.0;      ///< CI half-width (when ciValid)
    uint64_t batches = 0;     ///< batch means behind the CI
    uint64_t phases = 0;      ///< workload phases detected
};

/** Metrics parsed from a successful child's stdout JSON. */
struct JobMetrics
{
    double bandwidth = 0.0;
    double missRate = 0.0;
    double overallIpc = 0.0;
    uint64_t cycles = 0;
    uint64_t totalUops = 0;
    /** Root-cause rollup (src/attrib); has==false on old children. */
    AttribRollup attrib;
    /** Streaming interval statistics (src/obs/stats). */
    JobStats stats;
};

/** Per-child host resource usage (wait4; see batch/subprocess). */
struct JobUsage
{
    uint64_t maxRssKb = 0;  ///< peak resident set, KiB
    double userSec = 0.0;   ///< user CPU time
    double sysSec = 0.0;    ///< system CPU time
    uint64_t inBlock = 0;   ///< block-input ops (trace-decode I/O)
    uint64_t outBlock = 0;  ///< block-output ops
};

/**
 * Per-child host perf counters, parsed from the child's `perf.total`
 * object when the sweep runs with --perf and the counters were
 * available in the child. Multiplex-scaled doubles (see
 * prof/perf_counters.hh); never served from the result cache, since
 * host counters are a property of the machine, not the spec.
 */
struct JobPerf
{
    double cycles = 0.0;
    double instructions = 0.0;
    double cacheRefs = 0.0;
    double cacheMisses = 0.0;
    double branches = 0.0;
    double branchMisses = 0.0;

    /// @{ Derived rates (0 when the denominator is 0).
    double ipc() const
    {
        return cycles > 0.0 ? instructions / cycles : 0.0;
    }
    double cacheMpki() const
    {
        return instructions > 0.0
                   ? cacheMisses * 1000.0 / instructions
                   : 0.0;
    }
    double branchMissRate() const
    {
        return branches > 0.0 ? branchMisses / branches : 0.0;
    }
    /// @}
};

/** What the supervisor remembers about one job across attempts. */
struct JobRecord
{
    JobSpec spec;
    bool done = false;         ///< terminal (final journal event)
    JobClass cls = JobClass::Ok;
    int attempts = 0;          ///< attempts that consumed a try
    int exitCode = -1;         ///< last attempt's exit code (-1: n/a)
    int termSignal = 0;        ///< last attempt's signal (0: none)
    double seconds = 0.0;      ///< last attempt's wall time
    bool hasMetrics = false;
    JobMetrics metrics;
    bool hasUsage = false;     ///< last attempt's rusage captured
    JobUsage usage;
    bool hasPerf = false;      ///< child reported live perf counters
    JobPerf perf;
    std::string note;          ///< first stderr line of a failure
    std::string heartbeatPath; ///< live-telemetry file ("" if off)
    bool replayed = false;     ///< restored from a journal on resume
    /// Served from the result cache instead of simulated; `seconds`
    /// is then the hit latency, not a simulation time.
    bool cached = false;
    /// @{ Service-mode scheduling attributes (see src/svc): higher
    ///    priority launches first; within a priority class, tenants
    ///    share worker slots round-robin.
    std::string tenant;
    int priority = 0;
    /// @}
};

/**
 * Enumerate the workload x frontend x capacity matrix in
 * deterministic order (workload-outer, matching SuiteRunner, so job
 * ids are stable across runs and resumable).
 */
std::vector<JobSpec> buildJobMatrix(
    const std::vector<std::string> &workloads,
    const std::vector<std::string> &frontends,
    const std::vector<uint64_t> &capacities, uint64_t insts);

/** Split a comma-separated CLI list ("a,b,c"); empty string -> {}. */
std::vector<std::string> splitList(const std::string &csv);

} // namespace xbs

#endif // XBS_BATCH_JOB_HH
