#include "batch/scheduler.hh"

#include <algorithm>
#include <thread>

#include <signal.h>
#include <sys/wait.h>

#include "batch/result_cache.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/heartbeat.hh"

namespace xbs
{

namespace
{

/** Parse the metrics xbsim --json prints on stdout. */
bool
parseChildMetrics(const std::string &out, JobMetrics *metrics)
{
    JsonValue v;
    if (!parseJson(out, &v, nullptr) || !v.isObject())
        return false;
    if (const JsonValue *f = v.find("bandwidth"))
        metrics->bandwidth = f->asNumber();
    if (const JsonValue *f = v.find("missRate"))
        metrics->missRate = f->asNumber();
    if (const JsonValue *f = v.find("overallIpc"))
        metrics->overallIpc = f->asNumber();
    if (const JsonValue *f = v.find("cycles"))
        metrics->cycles = f->asUint();
    if (const JsonValue *f = v.find("totalUops"))
        metrics->totalUops = f->asUint();
    if (const JsonValue *f = v.find("attrib"))
        metrics->attrib = parseAttribRollup(*f);
    // The child's streaming-stats summary (interval runs): keep the
    // window-bandwidth estimator and the phase count so report.json
    // carries the n behind every statistical comparison downstream.
    if (const JsonValue *s = v.find("stats"); s && s->isObject()) {
        metrics->stats.has = true;
        if (const JsonValue *f = s->find("windows"))
            metrics->stats.windows = f->asUint();
        if (const JsonValue *f = s->find("windowCycles"))
            metrics->stats.windowCycles = f->asUint();
        if (const JsonValue *bw = s->find("bandwidth");
            bw && bw->isObject()) {
            if (const JsonValue *f = bw->find("mean"))
                metrics->stats.bwMean = f->asNumber();
            if (const JsonValue *f = bw->find("var"))
                metrics->stats.bwVar = f->asNumber();
            if (const JsonValue *f = bw->find("lag1"))
                metrics->stats.bwLag1 = f->asNumber();
            if (const JsonValue *f = bw->find("ci95")) {
                metrics->stats.ciValid = true;
                metrics->stats.bwCi95 = f->asNumber();
            }
            if (const JsonValue *f = bw->find("batches"))
                metrics->stats.batches = f->asUint();
        }
    }
    if (const JsonValue *p = v.find("phases"); p && p->isArray())
        metrics->stats.phases = (uint64_t)p->items.size();
    return v.find("bandwidth") != nullptr;
}

/** Parse the child's perf.total counters (xbsim --perf). Absent or
 *  typed-unavailable perf demotes to "no perf" without complaint:
 *  availability is a property of the host, not the job. */
bool
parseChildPerf(const std::string &out, JobPerf *perf)
{
    JsonValue v;
    if (!parseJson(out, &v, nullptr) || !v.isObject())
        return false;
    const JsonValue *p = v.find("perf");
    if (!p || !p->isObject())
        return false;
    const JsonValue *avail = p->find("available");
    if (!avail || !avail->boolValue)
        return false;
    const JsonValue *total = p->find("total");
    if (!total || !total->isObject())
        return false;
    if (const JsonValue *f = total->find("cycles"))
        perf->cycles = f->asNumber();
    if (const JsonValue *f = total->find("instructions"))
        perf->instructions = f->asNumber();
    if (const JsonValue *f = total->find("cacheRefs"))
        perf->cacheRefs = f->asNumber();
    if (const JsonValue *f = total->find("cacheMisses"))
        perf->cacheMisses = f->asNumber();
    if (const JsonValue *f = total->find("branches"))
        perf->branches = f->asNumber();
    if (const JsonValue *f = total->find("branchMisses"))
        perf->branchMisses = f->asNumber();
    return total->find("cycles") != nullptr;
}

/** First non-empty line of a child's stderr, for failure notes. */
std::string
firstLineOf(const std::string &text)
{
    std::size_t start = text.find_first_not_of("\r\n");
    if (start == std::string::npos)
        return "";
    std::size_t end = text.find_first_of("\r\n", start);
    return text.substr(start, end == std::string::npos
                                  ? std::string::npos
                                  : end - start);
}

} // anonymous namespace

SweepScheduler::SweepScheduler(SchedulerOptions opts,
                               std::vector<JobSpec> jobs,
                               SweepJournal *journal)
    : opts_(std::move(opts)), journal_(journal)
{
    records_.reserve(jobs.size());
    for (JobSpec &spec : jobs) {
        JobRecord rec;
        rec.spec = std::move(spec);
        records_.push_back(std::move(rec));
    }
    eligibleAt_.assign(records_.size(), Clock::time_point::min());
    for (std::size_t i = 0; i < records_.size(); ++i) {
        pending_.push_back(i);
        nextId_ = std::max(nextId_, records_[i].spec.id + 1);
    }
    slotBusy_.assign(std::max(opts_.workers, 1u), 0);
}

uint64_t
SweepScheduler::restore(const std::vector<JournalEvent> &events)
{
    uint64_t last_seq = 0;
    for (const JournalEvent &ev : events) {
        last_seq = std::max(last_seq, ev.seq);
        auto it = std::find_if(records_.begin(), records_.end(),
                               [&](const JobRecord &r) {
                                   return r.spec.id == ev.job;
                               });
        if (ev.kind == JournalEvent::Kind::Submit) {
            // Service mode has no manifest: the Submit events ARE the
            // matrix, so an unknown id creates the record.
            nextId_ = std::max(nextId_, ev.job + 1);
            if (it != records_.end() || ev.spec.empty())
                continue;
            Expected<RunSpec> run = RunSpec::fromArgv(ev.spec);
            if (!run.ok()) {
                xbs_warn("journal submit %d has a bad spec: %s",
                         ev.job, run.status().toString().c_str());
                continue;
            }
            JobRecord rec;
            rec.spec.id = ev.job;
            rec.spec.run = run.take();
            rec.tenant = ev.tenant;
            rec.priority = ev.priority;
            records_.push_back(std::move(rec));
            eligibleAt_.push_back(Clock::time_point::min());
            continue;
        }
        if (it == records_.end())
            continue;  // journal mentions a job not in the manifest
        JobRecord &rec = *it;
        switch (ev.kind) {
          case JournalEvent::Kind::Submit:
            break;  // handled above
          case JournalEvent::Kind::Launch:
            break;  // a launch without a result consumed nothing
          case JournalEvent::Kind::Result:
            // Drain-interrupted attempts are free (their outcome is
            // the supervisor's doing, not the job's); everything
            // else consumed one attempt.
            if (ev.cls != JobClass::Interrupted) {
                ++rec.attempts;
                rec.exitCode = ev.exitCode;
                rec.termSignal = ev.termSignal;
                rec.seconds = ev.seconds;
                rec.hasUsage = ev.hasUsage;
                rec.usage = ev.usage;
                rec.hasPerf = ev.hasPerf;
                rec.perf = ev.perf;
            }
            break;
          case JournalEvent::Kind::Final:
            rec.done = true;
            rec.replayed = true;
            rec.cls = ev.cls;
            rec.attempts = ev.attempt;
            rec.exitCode = ev.exitCode;
            rec.termSignal = ev.termSignal;
            rec.seconds = ev.seconds;
            rec.hasMetrics = ev.hasMetrics;
            rec.metrics = ev.metrics;
            rec.hasUsage = ev.hasUsage;
            rec.usage = ev.usage;
            rec.hasPerf = ev.hasPerf;
            rec.perf = ev.perf;
            rec.note = ev.note;
            rec.cached = ev.cached;
            break;
          case JournalEvent::Kind::Cancel:
            // The cancel reached the journal; whether or not its
            // Final did, the job must not run again.
            if (!rec.done) {
                rec.done = true;
                rec.replayed = true;
                rec.cls = JobClass::Canceled;
                rec.note = ev.note;
            }
            break;
        }
    }
    // Re-queue only unfinished jobs, in matrix order.
    pending_.clear();
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (!records_[i].done)
            pending_.push_back(i);
    }
    return last_seq;
}

void
SweepScheduler::journalAppend(JournalEvent &event, bool durable)
{
    if (!journal_)
        return;
    if (Status st = journal_->append(event, durable); !st.isOk()) {
        // A dying journal must not kill the sweep; the results in
        // memory still produce a report. Resume fidelity degrades,
        // which the warning makes visible.
        xbs_warn("journal append failed: %s",
                 st.toString().c_str());
    }
}

Expected<int>
SweepScheduler::submit(const RunSpec &run, const std::string &tenant,
                       int priority, bool durable)
{
    const int id = nextId_++;
    ++submits_;

    // Journal first: the Submit event is the only persistent record
    // of a service-mode job's existence, so it must be on disk (or
    // covered by the caller's journalSync barrier) before anyone is
    // told the job was accepted.
    if (journal_) {
        JournalEvent ev;
        ev.kind = JournalEvent::Kind::Submit;
        ev.job = id;
        ev.spec = run.toArgv();
        ev.tenant = tenant;
        ev.priority = priority;
        if (Status st = journal_->append(ev, durable); !st.isOk()) {
            --nextId_;
            return st;
        }
    }

    JobRecord rec;
    rec.spec.id = id;
    rec.spec.run = run;
    rec.tenant = tenant;
    rec.priority = priority;
    records_.push_back(std::move(rec));
    eligibleAt_.push_back(Clock::time_point::min());
    pending_.push_back(records_.size() - 1);
    return id;
}

Status
SweepScheduler::cancel(int job_id)
{
    auto it = std::find_if(records_.begin(), records_.end(),
                           [&](const JobRecord &r) {
                               return r.spec.id == job_id;
                           });
    if (it == records_.end()) {
        return Status::error(StatusCode::NotFound,
                             "unknown job " + std::to_string(job_id));
    }
    const std::size_t idx = (std::size_t)(it - records_.begin());
    JobRecord &rec = *it;
    if (rec.done) {
        return Status::error("job " + std::to_string(job_id) +
                             " is already final (" +
                             jobClassName(rec.cls) + ")");
    }

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Cancel;
    ev.job = job_id;
    ev.attempt = rec.attempts;
    ev.cls = JobClass::Canceled;
    journalAppend(ev);
    ++cancels_;

    auto pend = std::find(pending_.begin(), pending_.end(), idx);
    if (pend != pending_.end()) {
        pending_.erase(pend);
        rec.note = "canceled while pending";
        finalize(idx, JobClass::Canceled, false, JobMetrics{});
        return Status::ok();
    }
    for (Running &run : running_) {
        if (run.idx != idx || run.canceled)
            continue;
        // Same TERM-then-KILL escalation as the watchdog; the reap
        // path sees run.canceled and finalizes as Canceled.
        run.canceled = true;
        run.termSent = true;
        run.killAt = Clock::now() +
                     std::chrono::microseconds(
                         (int64_t)(opts_.graceSec * 1e6));
        signalChild(run.child, SIGTERM);
        return Status::ok();
    }
    // Not pending, not running, not done: only reachable mid-step;
    // treat as pending-style cancellation.
    rec.note = "canceled";
    finalize(idx, JobClass::Canceled, false, JobMetrics{});
    return Status::ok();
}

Status
SweepScheduler::journalSync()
{
    return journal_ ? journal_->sync() : Status::ok();
}

/**
 * Launch-time cache probe: a first-attempt job whose key hits is
 * finalized as `cached` right here — no fork, no worker slot. The
 * Final journal line is written without its own fsync; step() issues
 * one group-commit sync after the launch loop, so a burst of hits
 * costs one fsync total (the >100 cached completions/sec budget).
 */
bool
SweepScheduler::tryServeFromCache(std::size_t idx,
                                  std::string *key_hex)
{
    key_hex->clear();
    if (!opts_.cache || !opts_.cache->isOpen())
        return false;
    JobRecord &rec = records_[idx];
    if (rec.attempts != 0)
        return false;  // a failed simulation outranks a stale entry

    const auto t0 = Clock::now();
    Expected<CacheKey> key = makeCacheKey(rec.spec.run);
    if (!key.ok())
        return false;
    *key_hex = key.value().hex;
    Expected<CacheEntry> hit = opts_.cache->lookup(key.value());
    if (!hit.ok()) {
        ++cacheMisses_;
        return false;  // miss or corrupt entry: simulate
    }

    rec.exitCode = kExitOk;
    rec.termSignal = 0;
    rec.attempts = 1;
    rec.cached = true;
    rec.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    ++cacheHits_;
    ++unsyncedFinals_;
    finalize(idx, JobClass::Ok, true, hit.value().metrics,
             /*durable=*/false);
    return true;
}

void
SweepScheduler::storeToCache(const JobRecord &rec)
{
    if (!opts_.cache || !opts_.cache->isOpen())
        return;
    Expected<CacheKey> key = makeCacheKey(rec.spec.run);
    if (!key.ok())
        return;
    CacheEntry entry;
    entry.label = rec.spec.run.label();
    entry.seconds = rec.seconds;
    entry.metrics = rec.metrics;
    if (Status st = opts_.cache->store(key.value(), entry);
        !st.isOk()) {
        // The cache is an accelerator, never a correctness
        // dependency: a failed store only costs a future hit.
        xbs_warn("cache store failed: %s", st.toString().c_str());
    }
}

void
SweepScheduler::launch(std::size_t idx)
{
    std::string key_hex;
    if (tryServeFromCache(idx, &key_hex))
        return;
    if (!key_hex.empty()) {
        auto twin = inflightByKey_.find(key_hex);
        if (twin != inflightByKey_.end() && twin->second != idx) {
            // The same cell is simulating right now: defer instead
            // of paying for it twice. When the twin stores its
            // entry, the next launch attempt here is a cache hit;
            // if the twin fails, the entry never appears and this
            // job runs for real.
            eligibleAt_[idx] =
                Clock::now() + std::chrono::milliseconds(50);
            pending_.push_back(idx);
            return;
        }
    }

    JobRecord &rec = records_[idx];
    const int attempt = rec.attempts + 1;

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.job = rec.spec.id;
    ev.attempt = attempt;
    journalAppend(ev);

    std::vector<std::string> argv = rec.spec.argv(opts_.xbsimPath);
    std::string hb_path;
    if (!opts_.heartbeatDir.empty()) {
        hb_path = opts_.heartbeatDir + "/job-" +
                  std::to_string(rec.spec.id) + ".json";
        argv.push_back("--heartbeat=" + hb_path);
        argv.push_back("--heartbeat-period=" +
                       std::to_string(opts_.heartbeatSec));
        rec.heartbeatPath = hb_path;
    }
    if (opts_.extraArgs) {
        for (std::string &flag : opts_.extraArgs(rec.spec, attempt))
            argv.push_back(std::move(flag));
    }
    Expected<Child> child = spawnChild(argv);
    const auto now = Clock::now();
    if (!child.ok()) {
        // fork/pipe failure. The typed status splits the verdict:
        // transient host exhaustion (fork EAGAIN, fd-table ENFILE,
        // ENOMEM) classifies Resource and retries with backoff —
        // exactly the case where waiting helps — while everything
        // else finalizes as Spawn (deterministic enough that
        // retrying won't help and might be the thing melting the
        // box).
        const JobClass cls = child.status().transient()
                                 ? JobClass::Resource
                                 : JobClass::Spawn;
        JournalEvent res;
        res.kind = JournalEvent::Kind::Result;
        res.job = rec.spec.id;
        res.attempt = attempt;
        res.cls = cls;
        res.note = child.status().toString();
        journalAppend(res);
        rec.attempts = attempt;
        rec.note = child.status().toString();
        if (jobClassRetryable(cls) && !draining_ &&
            (unsigned)rec.attempts <= opts_.maxRetries) {
            const auto delay = std::chrono::milliseconds(
                (int64_t)opts_.backoffMs << (rec.attempts - 1));
            eligibleAt_[idx] = now + delay;
            pending_.push_back(idx);
            ++retries_;
            return;
        }
        finalize(idx, cls, false, JobMetrics{});
        return;
    }

    Running run;
    run.child = child.take();
    run.child.heartbeatPath = hb_path;
    run.idx = idx;
    run.attempt = attempt;
    if (!key_hex.empty()) {
        run.cacheKeyHex = key_hex;
        inflightByKey_[key_hex] = idx;
    }
    run.start = now;
    run.deadline =
        now + std::chrono::microseconds(
                  (int64_t)(opts_.timeoutSec * 1e6));
    run.lastProgress = now;
    run.nextHbPoll = now;
    for (unsigned s = 0; s < slotBusy_.size(); ++s) {
        if (!slotBusy_[s]) {
            slotBusy_[s] = 1;
            run.slot = s;
            break;
        }
    }
    if (opts_.spanLog) {
        opts_.spanLog->noteLaunch((uint64_t)rec.spec.id,
                                  rec.spec.run.label(),
                                  (unsigned)attempt, run.slot);
    }
    running_.push_back(std::move(run));
}

void
SweepScheduler::pollHeartbeat(Running &run, Clock::time_point now)
{
    if (run.child.heartbeatPath.empty() || run.termSent ||
        now < run.nextHbPoll) {
        return;
    }
    // Poll a few times per period: fresh enough to catch a stall
    // within ~one extra quarter-period, cheap enough (one small
    // read) to sit in the supervisor loop.
    run.nextHbPoll =
        now + std::chrono::microseconds(
                  (int64_t)(opts_.heartbeatSec * 1e6 / 4));

    Expected<HeartbeatRecord> hb =
        readHeartbeat(run.child.heartbeatPath);
    if (!hb.ok())
        return;  // not written yet (or torn temp): wall clock rules

    const HeartbeatRecord &rec = hb.value();
    const bool progress = !run.hbArmed || rec.uops > run.hbUops ||
                          rec.phase != run.hbPhase;
    // Only this child's beats count: a predecessor attempt's final
    // record has done=true and must not arm the detector for a
    // child that hasn't reached main yet.
    if (!run.hbArmed && rec.done)
        return;
    run.hbArmed = true;
    run.hbUops = rec.uops;
    run.hbPhase = rec.phase;
    if (progress)
        run.lastProgress = now;

    const auto stall_after = std::chrono::microseconds(
        (int64_t)(opts_.heartbeatSec * opts_.stallPeriods * 1e6));
    if (now - run.lastProgress >= stall_after) {
        // Alive but not advancing: kill as stalled (retryable) with
        // the same TERM-then-KILL escalation as a timeout.
        run.stalled = true;
        ++stalls_;
        run.termSent = true;
        run.killAt =
            now + std::chrono::microseconds(
                      (int64_t)(opts_.graceSec * 1e6));
        signalChild(run.child, SIGTERM);
    }
}

void
SweepScheduler::finalize(std::size_t idx, JobClass cls,
                         bool has_metrics, const JobMetrics &metrics,
                         bool durable)
{
    JobRecord &rec = records_[idx];
    rec.done = true;
    rec.cls = cls;
    rec.hasMetrics = has_metrics;
    rec.metrics = metrics;

    // Populate the cache before journaling Final: if we die between
    // the store and the append, restart replays the job and hits the
    // just-stored entry; the reverse order would just cost a miss.
    // Either way nothing is lost or double-counted.
    if (cls == JobClass::Ok && has_metrics && !rec.cached)
        storeToCache(rec);

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Final;
    ev.job = rec.spec.id;
    ev.attempt = rec.attempts;
    ev.cls = cls;
    ev.exitCode = rec.exitCode;
    ev.termSignal = rec.termSignal;
    ev.seconds = rec.seconds;
    ev.hasMetrics = has_metrics;
    ev.metrics = metrics;
    ev.hasUsage = rec.hasUsage;
    ev.usage = rec.usage;
    ev.hasPerf = rec.hasPerf;
    ev.perf = rec.perf;
    ev.note = rec.note;
    ev.cached = rec.cached;
    journalAppend(ev, durable);

    if (opts_.onFinal)
        opts_.onFinal(rec);
}

void
SweepScheduler::handleExit(Running &run, int raw_status)
{
    if (!run.cacheKeyHex.empty())
        inflightByKey_.erase(run.cacheKeyHex);
    JobRecord &rec = records_[run.idx];
    const bool exited = WIFEXITED(raw_status);
    const int exit_code = exited ? WEXITSTATUS(raw_status) : -1;
    const int term_signal =
        WIFSIGNALED(raw_status) ? WTERMSIG(raw_status) : 0;
    const double seconds =
        std::chrono::duration<double>(Clock::now() - run.start)
            .count();

    if (run.slot < slotBusy_.size())
        slotBusy_[run.slot] = 0;

    JobClass cls = classifyOutcome(run.timedOut, run.stalled, exited,
                                   exit_code, term_signal);
    // A cancel kill outranks everything the dying child reported:
    // whatever it managed on the way down, the user asked for it to
    // stop, and Canceled is terminal (never retried).
    if (run.canceled)
        cls = JobClass::Canceled;
    // A drain (supervisor shutdown) turns the kill-induced outcomes
    // into Interrupted: the attempt is free and --resume re-runs the
    // job. A child that still finished with a deterministic verdict
    // keeps it.
    if (!run.canceled && draining_ && !run.timedOut && !run.stalled &&
        (cls == JobClass::Crash || cls == JobClass::Interrupted)) {
        cls = JobClass::Interrupted;
    }

    JobMetrics metrics;
    const bool has_metrics =
        cls == JobClass::Ok &&
        parseChildMetrics(run.child.out, &metrics);

    rec.exitCode = exited ? exit_code : -1;
    rec.termSignal = term_signal;
    rec.seconds = seconds;
    rec.hasUsage = run.child.hasUsage;
    if (rec.hasUsage) {
        rec.usage.maxRssKb = run.child.maxRssKb;
        rec.usage.userSec = run.child.userSec;
        rec.usage.sysSec = run.child.sysSec;
        rec.usage.inBlock = run.child.inBlock;
        rec.usage.outBlock = run.child.outBlock;
    }
    // Host perf counters ride the same stdout document as the paper
    // metrics; only a live Ok simulation carries them (cache hits
    // deliberately do not — they are host facts, not spec facts).
    rec.hasPerf =
        cls == JobClass::Ok && parseChildPerf(run.child.out, &rec.perf);
    if (cls != JobClass::Ok)
        rec.note = sanitizeNote(firstLineOf(run.child.err));
    if (cls == JobClass::Stalled && rec.note.empty()) {
        rec.note = "no uop progress for " +
                   std::to_string(opts_.stallPeriods) +
                   " heartbeat periods";
    }

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Result;
    ev.job = rec.spec.id;
    ev.attempt = run.attempt;
    ev.cls = cls;
    ev.exitCode = rec.exitCode;
    ev.termSignal = term_signal;
    ev.seconds = seconds;
    ev.hasMetrics = has_metrics;
    ev.metrics = metrics;
    ev.hasUsage = rec.hasUsage;
    ev.usage = rec.usage;
    ev.hasPerf = rec.hasPerf;
    ev.perf = rec.perf;
    ev.note = rec.note;
    journalAppend(ev);

    if (opts_.spanLog) {
        opts_.spanLog->noteExit((uint64_t)rec.spec.id,
                                (unsigned)run.attempt,
                                jobClassName(cls));
    }

    if (cls == JobClass::Interrupted && draining_) {
        // No final event: the journal shows an open attempt and
        // --resume re-queues the job.
        return;
    }

    rec.attempts = run.attempt;

    // Checkpoint demotion: a warm-start job that died with a data
    // error was rejected at restore (missing, corrupt, or mismatched
    // checkpoint — xbsim exits 2 before simulating a cycle). The
    // checkpoint is an accelerator, never a correctness dependency:
    // requeue the job as a cold start instead of finalizing the
    // failure, at the cost of re-running warmup.
    if (cls == JobClass::Data && !draining_ &&
        !rec.spec.run.restoreFrom.empty()) {
        rec.spec.run.restoreFrom.clear();
        rec.note = "checkpoint rejected; demoted to cold start";
        eligibleAt_[run.idx] = Clock::now();
        pending_.push_back(run.idx);
        ++retries_;
        if (opts_.spanLog) {
            const double start = opts_.spanLog->now();
            opts_.spanLog->noteBackoff((uint64_t)rec.spec.id,
                                       (unsigned)rec.attempts + 1,
                                       start, start);
        }
        return;
    }

    if (jobClassRetryable(cls) && !draining_ &&
        (unsigned)rec.attempts <= opts_.maxRetries) {
        // Exponential backoff: base * 2^(attempt-1).
        const auto delay = std::chrono::milliseconds(
            (int64_t)opts_.backoffMs << (rec.attempts - 1));
        eligibleAt_[run.idx] = Clock::now() + delay;
        pending_.push_back(run.idx);
        ++retries_;
        if (opts_.spanLog) {
            const double start = opts_.spanLog->now();
            opts_.spanLog->noteBackoff(
                (uint64_t)rec.spec.id,
                (unsigned)rec.attempts + 1, start,
                start + std::chrono::duration<double>(delay)
                            .count());
        }
        return;
    }

    finalize(run.idx, cls, has_metrics, metrics);
}

/**
 * Pick the next pending job to launch, or records_.size() if nothing
 * is eligible: highest priority first; within a priority class the
 * least-served tenant (round-robin fairness, so one tenant's 1000
 * submissions cannot starve another's one); matrix/FIFO order last.
 */
std::size_t
SweepScheduler::pickPending(Clock::time_point now)
{
    auto best = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (eligibleAt_[*it] > now)
            continue;
        if (best == pending_.end()) {
            best = it;
            continue;
        }
        const JobRecord &a = records_[*it];
        const JobRecord &b = records_[*best];
        if (a.priority != b.priority) {
            if (a.priority > b.priority)
                best = it;
            continue;
        }
        if (tenantServed_[a.tenant] < tenantServed_[b.tenant])
            best = it;
    }
    if (best == pending_.end())
        return records_.size();
    const std::size_t idx = *best;
    pending_.erase(best);
    ++tenantServed_[records_[idx].tenant];
    return idx;
}

std::map<std::string, uint64_t>
SweepScheduler::pendingByTenant() const
{
    std::map<std::string, uint64_t> depth;
    for (std::size_t idx : pending_)
        ++depth[records_[idx].tenant];
    return depth;
}

void
SweepScheduler::step()
{
    const auto now = Clock::now();
    const auto grace = std::chrono::microseconds(
        (int64_t)(opts_.graceSec * 1e6));

    if (!draining_ && stopRequested()) {
        draining_ = true;
        interrupted_ = true;
        for (Running &run : running_) {
            signalChild(run.child, SIGTERM);
            run.termSent = true;
            run.killAt = now + grace;
        }
    }

    // Launch into free slots. Cache hits never take a slot, so one
    // step drains an arbitrarily long run of duplicate submissions.
    if (!draining_) {
        while (running_.size() < opts_.workers) {
            const std::size_t idx = pickPending(now);
            if (idx >= records_.size())
                break;
            launch(idx);
        }
    }
    if (unsyncedFinals_ > 0) {
        // Group commit for the batch of cache-hit finals journaled
        // above: one fsync covers them all.
        if (Status st = journalSync(); !st.isOk())
            xbs_warn("journal sync failed: %s", st.toString().c_str());
        unsyncedFinals_ = 0;
    }

    // Poll workers: pump pipes, reap exits, enforce deadlines.
    for (std::size_t i = 0; i < running_.size();) {
        Running &run = running_[i];
        pumpChild(run.child);
        int raw = 0;
        if (reapChild(run.child, &raw)) {
            handleExit(run, raw);
            running_.erase(running_.begin() + (long)i);
            continue;
        }
        pollHeartbeat(run, now);
        // Once heartbeats prove the child is making progress,
        // the stall detector owns the kill decision; the fixed
        // deadline only guards children that never got far
        // enough to beat.
        if (!run.termSent && !run.hbArmed && now >= run.deadline) {
            // Watchdog: ask nicely first so the child can flush
            // partial output, then escalate.
            run.timedOut = true;
            run.termSent = true;
            run.killAt = now + grace;
            signalChild(run.child, SIGTERM);
        } else if (run.termSent && now >= run.killAt) {
            signalChild(run.child, SIGKILL);
            run.killAt = Clock::time_point::max();
        }
        ++i;
    }
}

bool
SweepScheduler::run()
{
    if (opts_.spanLog && !opts_.spanLog->started())
        opts_.spanLog->startSweep();

    for (;;) {
        step();
        if (running_.empty() && (draining_ || pending_.empty()))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.pollMs));
    }

    if (opts_.spanLog)
        opts_.spanLog->finishSweep();

    return !interrupted_;
}

bool
SweepScheduler::allOk() const
{
    return std::all_of(records_.begin(), records_.end(),
                       [](const JobRecord &r) {
                           return r.done && r.cls == JobClass::Ok;
                       });
}

std::size_t
SweepScheduler::doneCount() const
{
    return (std::size_t)std::count_if(
        records_.begin(), records_.end(),
        [](const JobRecord &r) { return r.done; });
}

} // namespace xbs
