#include "batch/scheduler.hh"

#include <algorithm>
#include <thread>

#include <signal.h>
#include <sys/wait.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/heartbeat.hh"

namespace xbs
{

namespace
{

/** Parse the metrics xbsim --json prints on stdout. */
bool
parseChildMetrics(const std::string &out, JobMetrics *metrics)
{
    JsonValue v;
    if (!parseJson(out, &v, nullptr) || !v.isObject())
        return false;
    if (const JsonValue *f = v.find("bandwidth"))
        metrics->bandwidth = f->asNumber();
    if (const JsonValue *f = v.find("missRate"))
        metrics->missRate = f->asNumber();
    if (const JsonValue *f = v.find("overallIpc"))
        metrics->overallIpc = f->asNumber();
    if (const JsonValue *f = v.find("cycles"))
        metrics->cycles = f->asUint();
    if (const JsonValue *f = v.find("totalUops"))
        metrics->totalUops = f->asUint();
    if (const JsonValue *f = v.find("attrib"))
        metrics->attrib = parseAttribRollup(*f);
    return v.find("bandwidth") != nullptr;
}

/** First non-empty line of a child's stderr, for failure notes. */
std::string
firstLineOf(const std::string &text)
{
    std::size_t start = text.find_first_not_of("\r\n");
    if (start == std::string::npos)
        return "";
    std::size_t end = text.find_first_of("\r\n", start);
    return text.substr(start, end == std::string::npos
                                  ? std::string::npos
                                  : end - start);
}

} // anonymous namespace

SweepScheduler::SweepScheduler(SchedulerOptions opts,
                               std::vector<JobSpec> jobs,
                               SweepJournal *journal)
    : opts_(std::move(opts)), journal_(journal)
{
    records_.reserve(jobs.size());
    for (JobSpec &spec : jobs) {
        JobRecord rec;
        rec.spec = std::move(spec);
        records_.push_back(std::move(rec));
    }
    eligibleAt_.assign(records_.size(), Clock::time_point::min());
    for (std::size_t i = 0; i < records_.size(); ++i)
        pending_.push_back(i);
    slotBusy_.assign(std::max(opts_.workers, 1u), 0);
}

uint64_t
SweepScheduler::restore(const std::vector<JournalEvent> &events)
{
    uint64_t last_seq = 0;
    for (const JournalEvent &ev : events) {
        last_seq = std::max(last_seq, ev.seq);
        auto it = std::find_if(records_.begin(), records_.end(),
                               [&](const JobRecord &r) {
                                   return r.spec.id == ev.job;
                               });
        if (it == records_.end())
            continue;  // journal mentions a job not in the manifest
        JobRecord &rec = *it;
        switch (ev.kind) {
          case JournalEvent::Kind::Launch:
            break;  // a launch without a result consumed nothing
          case JournalEvent::Kind::Result:
            // Drain-interrupted attempts are free (their outcome is
            // the supervisor's doing, not the job's); everything
            // else consumed one attempt.
            if (ev.cls != JobClass::Interrupted) {
                ++rec.attempts;
                rec.exitCode = ev.exitCode;
                rec.termSignal = ev.termSignal;
                rec.seconds = ev.seconds;
                rec.hasUsage = ev.hasUsage;
                rec.usage = ev.usage;
            }
            break;
          case JournalEvent::Kind::Final:
            rec.done = true;
            rec.replayed = true;
            rec.cls = ev.cls;
            rec.attempts = ev.attempt;
            rec.exitCode = ev.exitCode;
            rec.termSignal = ev.termSignal;
            rec.seconds = ev.seconds;
            rec.hasMetrics = ev.hasMetrics;
            rec.metrics = ev.metrics;
            rec.hasUsage = ev.hasUsage;
            rec.usage = ev.usage;
            rec.note = ev.note;
            break;
        }
    }
    // Re-queue only unfinished jobs, in matrix order.
    pending_.clear();
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (!records_[i].done)
            pending_.push_back(i);
    }
    return last_seq;
}

void
SweepScheduler::journalAppend(JournalEvent &event)
{
    if (!journal_)
        return;
    if (Status st = journal_->append(event); !st.isOk()) {
        // A dying journal must not kill the sweep; the results in
        // memory still produce a report. Resume fidelity degrades,
        // which the warning makes visible.
        xbs_warn("journal append failed: %s",
                 st.toString().c_str());
    }
}

void
SweepScheduler::launch(std::size_t idx)
{
    JobRecord &rec = records_[idx];
    const int attempt = rec.attempts + 1;

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.job = rec.spec.id;
    ev.attempt = attempt;
    journalAppend(ev);

    std::vector<std::string> argv = rec.spec.argv(opts_.xbsimPath);
    std::string hb_path;
    if (!opts_.heartbeatDir.empty()) {
        hb_path = opts_.heartbeatDir + "/job-" +
                  std::to_string(rec.spec.id) + ".json";
        argv.push_back("--heartbeat=" + hb_path);
        argv.push_back("--heartbeat-period=" +
                       std::to_string(opts_.heartbeatSec));
        rec.heartbeatPath = hb_path;
    }
    if (opts_.extraArgs) {
        for (std::string &flag : opts_.extraArgs(rec.spec, attempt))
            argv.push_back(std::move(flag));
    }
    Expected<Child> child = spawnChild(argv);
    const auto now = Clock::now();
    if (!child.ok()) {
        // fork/pipe failure: record the attempt and finalize as
        // Spawn (deterministic enough that retrying won't help and
        // might be the thing melting the box).
        JournalEvent res;
        res.kind = JournalEvent::Kind::Result;
        res.job = rec.spec.id;
        res.attempt = attempt;
        res.cls = JobClass::Spawn;
        res.note = child.status().toString();
        journalAppend(res);
        rec.attempts = attempt;
        rec.note = child.status().toString();
        finalize(idx, JobClass::Spawn, false, JobMetrics{});
        return;
    }

    Running run;
    run.child = child.take();
    run.child.heartbeatPath = hb_path;
    run.idx = idx;
    run.attempt = attempt;
    run.start = now;
    run.deadline =
        now + std::chrono::microseconds(
                  (int64_t)(opts_.timeoutSec * 1e6));
    run.lastProgress = now;
    run.nextHbPoll = now;
    for (unsigned s = 0; s < slotBusy_.size(); ++s) {
        if (!slotBusy_[s]) {
            slotBusy_[s] = 1;
            run.slot = s;
            break;
        }
    }
    if (opts_.spanLog) {
        opts_.spanLog->noteLaunch((uint64_t)rec.spec.id,
                                  rec.spec.run.label(),
                                  (unsigned)attempt, run.slot);
    }
    running_.push_back(std::move(run));
}

void
SweepScheduler::pollHeartbeat(Running &run, Clock::time_point now)
{
    if (run.child.heartbeatPath.empty() || run.termSent ||
        now < run.nextHbPoll) {
        return;
    }
    // Poll a few times per period: fresh enough to catch a stall
    // within ~one extra quarter-period, cheap enough (one small
    // read) to sit in the supervisor loop.
    run.nextHbPoll =
        now + std::chrono::microseconds(
                  (int64_t)(opts_.heartbeatSec * 1e6 / 4));

    Expected<HeartbeatRecord> hb =
        readHeartbeat(run.child.heartbeatPath);
    if (!hb.ok())
        return;  // not written yet (or torn temp): wall clock rules

    const HeartbeatRecord &rec = hb.value();
    const bool progress = !run.hbArmed || rec.uops > run.hbUops ||
                          rec.phase != run.hbPhase;
    // Only this child's beats count: a predecessor attempt's final
    // record has done=true and must not arm the detector for a
    // child that hasn't reached main yet.
    if (!run.hbArmed && rec.done)
        return;
    run.hbArmed = true;
    run.hbUops = rec.uops;
    run.hbPhase = rec.phase;
    if (progress)
        run.lastProgress = now;

    const auto stall_after = std::chrono::microseconds(
        (int64_t)(opts_.heartbeatSec * opts_.stallPeriods * 1e6));
    if (now - run.lastProgress >= stall_after) {
        // Alive but not advancing: kill as stalled (retryable) with
        // the same TERM-then-KILL escalation as a timeout.
        run.stalled = true;
        run.termSent = true;
        run.killAt =
            now + std::chrono::microseconds(
                      (int64_t)(opts_.graceSec * 1e6));
        signalChild(run.child, SIGTERM);
    }
}

void
SweepScheduler::finalize(std::size_t idx, JobClass cls,
                         bool has_metrics, const JobMetrics &metrics)
{
    JobRecord &rec = records_[idx];
    rec.done = true;
    rec.cls = cls;
    rec.hasMetrics = has_metrics;
    rec.metrics = metrics;

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Final;
    ev.job = rec.spec.id;
    ev.attempt = rec.attempts;
    ev.cls = cls;
    ev.exitCode = rec.exitCode;
    ev.termSignal = rec.termSignal;
    ev.seconds = rec.seconds;
    ev.hasMetrics = has_metrics;
    ev.metrics = metrics;
    ev.hasUsage = rec.hasUsage;
    ev.usage = rec.usage;
    ev.note = rec.note;
    journalAppend(ev);

    if (opts_.onFinal)
        opts_.onFinal(rec);
}

void
SweepScheduler::handleExit(Running &run, int raw_status)
{
    JobRecord &rec = records_[run.idx];
    const bool exited = WIFEXITED(raw_status);
    const int exit_code = exited ? WEXITSTATUS(raw_status) : -1;
    const int term_signal =
        WIFSIGNALED(raw_status) ? WTERMSIG(raw_status) : 0;
    const double seconds =
        std::chrono::duration<double>(Clock::now() - run.start)
            .count();

    if (run.slot < slotBusy_.size())
        slotBusy_[run.slot] = 0;

    JobClass cls = classifyOutcome(run.timedOut, run.stalled, exited,
                                   exit_code, term_signal);
    // A drain (supervisor shutdown) turns the kill-induced outcomes
    // into Interrupted: the attempt is free and --resume re-runs the
    // job. A child that still finished with a deterministic verdict
    // keeps it.
    if (draining_ && !run.timedOut && !run.stalled &&
        (cls == JobClass::Crash || cls == JobClass::Interrupted)) {
        cls = JobClass::Interrupted;
    }

    JobMetrics metrics;
    const bool has_metrics =
        cls == JobClass::Ok &&
        parseChildMetrics(run.child.out, &metrics);

    rec.exitCode = exited ? exit_code : -1;
    rec.termSignal = term_signal;
    rec.seconds = seconds;
    rec.hasUsage = run.child.hasUsage;
    if (rec.hasUsage) {
        rec.usage.maxRssKb = run.child.maxRssKb;
        rec.usage.userSec = run.child.userSec;
        rec.usage.sysSec = run.child.sysSec;
    }
    if (cls != JobClass::Ok)
        rec.note = sanitizeNote(firstLineOf(run.child.err));
    if (cls == JobClass::Stalled && rec.note.empty()) {
        rec.note = "no uop progress for " +
                   std::to_string(opts_.stallPeriods) +
                   " heartbeat periods";
    }

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Result;
    ev.job = rec.spec.id;
    ev.attempt = run.attempt;
    ev.cls = cls;
    ev.exitCode = rec.exitCode;
    ev.termSignal = term_signal;
    ev.seconds = seconds;
    ev.hasMetrics = has_metrics;
    ev.metrics = metrics;
    ev.hasUsage = rec.hasUsage;
    ev.usage = rec.usage;
    ev.note = rec.note;
    journalAppend(ev);

    if (opts_.spanLog) {
        opts_.spanLog->noteExit((uint64_t)rec.spec.id,
                                (unsigned)run.attempt,
                                jobClassName(cls));
    }

    if (cls == JobClass::Interrupted && draining_) {
        // No final event: the journal shows an open attempt and
        // --resume re-queues the job.
        return;
    }

    rec.attempts = run.attempt;

    if (jobClassRetryable(cls) && !draining_ &&
        (unsigned)rec.attempts <= opts_.maxRetries) {
        // Exponential backoff: base * 2^(attempt-1).
        const auto delay = std::chrono::milliseconds(
            (int64_t)opts_.backoffMs << (rec.attempts - 1));
        eligibleAt_[run.idx] = Clock::now() + delay;
        pending_.push_back(run.idx);
        ++retries_;
        if (opts_.spanLog) {
            const double start = opts_.spanLog->now();
            opts_.spanLog->noteBackoff(
                (uint64_t)rec.spec.id,
                (unsigned)rec.attempts + 1, start,
                start + std::chrono::duration<double>(delay)
                            .count());
        }
        return;
    }

    finalize(run.idx, cls, has_metrics, metrics);
}

bool
SweepScheduler::run()
{
    const auto grace = std::chrono::microseconds(
        (int64_t)(opts_.graceSec * 1e6));

    if (opts_.spanLog && !opts_.spanLog->started())
        opts_.spanLog->startSweep();

    for (;;) {
        const auto now = Clock::now();

        if (!draining_ && stopRequested()) {
            draining_ = true;
            interrupted_ = true;
            for (Running &run : running_) {
                signalChild(run.child, SIGTERM);
                run.termSent = true;
                run.killAt = now + grace;
            }
        }

        // Launch into free slots (in matrix order, skipping jobs
        // still serving their backoff).
        if (!draining_) {
            while (running_.size() < opts_.workers) {
                auto it = std::find_if(
                    pending_.begin(), pending_.end(),
                    [&](std::size_t idx) {
                        return eligibleAt_[idx] <= now;
                    });
                if (it == pending_.end())
                    break;
                std::size_t idx = *it;
                pending_.erase(it);
                launch(idx);
            }
        }

        // Poll workers: pump pipes, reap exits, enforce deadlines.
        for (std::size_t i = 0; i < running_.size();) {
            Running &run = running_[i];
            pumpChild(run.child);
            int raw = 0;
            if (reapChild(run.child, &raw)) {
                handleExit(run, raw);
                running_.erase(running_.begin() + (long)i);
                continue;
            }
            pollHeartbeat(run, now);
            // Once heartbeats prove the child is making progress,
            // the stall detector owns the kill decision; the fixed
            // deadline only guards children that never got far
            // enough to beat.
            if (!run.termSent && !run.hbArmed &&
                now >= run.deadline) {
                // Watchdog: ask nicely first so the child can flush
                // partial output, then escalate.
                run.timedOut = true;
                run.termSent = true;
                run.killAt = now + grace;
                signalChild(run.child, SIGTERM);
            } else if (run.termSent && now >= run.killAt) {
                signalChild(run.child, SIGKILL);
                run.killAt = Clock::time_point::max();
            }
            ++i;
        }

        if (running_.empty() && (draining_ || pending_.empty()))
            break;

        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.pollMs));
    }

    if (opts_.spanLog)
        opts_.spanLog->finishSweep();

    return !interrupted_;
}

bool
SweepScheduler::allOk() const
{
    return std::all_of(records_.begin(), records_.end(),
                       [](const JobRecord &r) {
                           return r.done && r.cls == JobClass::Ok;
                       });
}

std::size_t
SweepScheduler::doneCount() const
{
    return (std::size_t)std::count_if(
        records_.begin(), records_.end(),
        [](const JobRecord &r) { return r.done; });
}

} // namespace xbs
