/**
 * @file
 * Child-process management for the sweep supervisor: fork/exec with
 * captured stdout/stderr, non-blocking supervision, and the
 * SIGTERM-then-SIGKILL escalation the watchdog uses on hung jobs.
 *
 * Each job runs as its own process, so a crash, abort, runaway
 * allocation, or hang in one simulation cannot take the sweep (or
 * the other workers) down with it — the isolation boundary the whole
 * batch layer is built on.
 */

#ifndef XBS_BATCH_SUBPROCESS_HH
#define XBS_BATCH_SUBPROCESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

#include "common/status.hh"

namespace xbs
{

/** A live (or just-reaped) child process. */
struct Child
{
    pid_t pid = -1;
    int outFd = -1;          ///< non-blocking read end of stdout
    int errFd = -1;          ///< non-blocking read end of stderr
    std::string out;         ///< stdout captured so far
    std::string err;         ///< stderr captured so far

    /// @{ Host resource usage captured via wait4() when the child is
    ///    reaped (hasUsage false if the kernel gave none).
    bool hasUsage = false;
    uint64_t maxRssKb = 0;   ///< peak resident set, KiB
    double userSec = 0.0;    ///< user CPU time
    double sysSec = 0.0;     ///< system CPU time
    uint64_t inBlock = 0;    ///< block-input operations
    uint64_t outBlock = 0;   ///< block-output operations
    /// @}

    /** Heartbeat file this child was asked to write ("" when live
     *  telemetry is off); the supervisor's stall detector polls it. */
    std::string heartbeatPath;

    bool alive() const { return pid > 0; }
};

/**
 * fork/exec @p argv with stdout and stderr piped back to the
 * supervisor. The child gets its own process group so an escalated
 * kill can target grandchildren too. If the exec itself fails the
 * child exits 127 (classified as JobClass::Spawn).
 */
Expected<Child> spawnChild(const std::vector<std::string> &argv);

/** Drain whatever the pipes currently hold (never blocks). */
void pumpChild(Child &child);

/**
 * Non-blocking reap. Returns true once the child has exited, with
 * the raw waitpid status in @p raw_status; the pipes are drained to
 * EOF and closed, and child.pid is reset.
 */
bool reapChild(Child &child, int *raw_status);

/** Send @p signum to the child's process group (no-op if gone). */
void signalChild(const Child &child, int signum);

/** Close pipe fds (after an unrecoverable spawn-side error). */
void closeChildFds(Child &child);

} // namespace xbs

#endif // XBS_BATCH_SUBPROCESS_HH
