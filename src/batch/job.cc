#include "batch/job.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xbs
{

std::vector<std::string>
JobSpec::argv(const std::string &xbsim) const
{
    std::vector<std::string> av;
    av.push_back(xbsim);
    for (std::string &flag : run.toArgv())
        av.push_back(std::move(flag));
    av.push_back("--json");
    return av;
}

const char *
jobClassName(JobClass cls)
{
    switch (cls) {
      case JobClass::Ok:          return "ok";
      case JobClass::Usage:       return "usage";
      case JobClass::Data:        return "data";
      case JobClass::Audit:       return "audit";
      case JobClass::Interrupted: return "interrupted";
      case JobClass::Timeout:     return "timeout";
      case JobClass::Stalled:     return "stalled";
      case JobClass::Crash:       return "crash";
      case JobClass::Spawn:       return "spawn";
      case JobClass::Resource:    return "resource";
      case JobClass::Canceled:    return "canceled";
    }
    return "?";
}

Expected<JobClass>
jobClassFromName(const std::string &name)
{
    static const std::pair<const char *, JobClass> kTable[] = {
        {"ok", JobClass::Ok},
        {"usage", JobClass::Usage},
        {"data", JobClass::Data},
        {"audit", JobClass::Audit},
        {"interrupted", JobClass::Interrupted},
        {"timeout", JobClass::Timeout},
        {"stalled", JobClass::Stalled},
        {"crash", JobClass::Crash},
        {"spawn", JobClass::Spawn},
        {"resource", JobClass::Resource},
        {"canceled", JobClass::Canceled},
    };
    for (const auto &[n, cls] : kTable) {
        if (name == n)
            return cls;
    }
    return Status::error("unknown job class '" + name + "'");
}

bool
jobClassRetryable(JobClass cls)
{
    // Resource is the typed "the host ran out of something" verdict
    // (ENOSPC journal/cache writes, fork EAGAIN): backoff gives the
    // host a chance to recover, unlike the deterministic classes.
    return cls == JobClass::Timeout || cls == JobClass::Stalled ||
           cls == JobClass::Crash || cls == JobClass::Resource;
}

JobClass
classifyOutcome(bool timed_out, bool stalled, bool exited,
                int exit_code, int term_signal)
{
    (void)term_signal;
    // Supervisor-side verdicts outrank whatever the dying child
    // reported; a stall is the more specific diagnosis.
    if (stalled)
        return JobClass::Stalled;
    if (timed_out)
        return JobClass::Timeout;
    if (!exited)
        return JobClass::Crash;
    switch (exit_code) {
      case kExitOk:          return JobClass::Ok;
      case kExitUsage:       return JobClass::Usage;
      case kExitData:        return JobClass::Data;
      case kExitAudit:       return JobClass::Audit;
      case kExitInterrupted: return JobClass::Interrupted;
      case 127:              return JobClass::Spawn;  // exec failed
      default:               return JobClass::Crash;
    }
}

std::string
sanitizeNote(const std::string &text, std::size_t max_len)
{
    std::string out;
    out.reserve(std::min(text.size(), max_len));
    for (unsigned char c : text) {
        if (out.size() >= max_len) {
            out += "...";
            break;
        }
        // Control bytes (including \n, which would split the JSONL
        // journal line, and \e, which could drive a terminal) become
        // spaces; high bytes pass through (the JSON writer escapes
        // its own metacharacters).
        out += (c < 0x20 || c == 0x7f) ? ' ' : (char)c;
    }
    return out;
}

std::vector<JobSpec>
buildJobMatrix(const std::vector<std::string> &workloads,
               const std::vector<std::string> &frontends,
               const std::vector<uint64_t> &capacities, uint64_t insts)
{
    std::vector<JobSpec> jobs;
    int id = 0;
    for (const std::string &w : workloads) {
        for (const std::string &f : frontends) {
            for (uint64_t cap : capacities) {
                JobSpec j;
                j.id = id++;
                j.run.workload = w;
                j.run.frontend = f;
                j.run.capacity = cap;
                j.run.insts = insts;
                jobs.push_back(std::move(j));
            }
        }
    }
    return jobs;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty())
            out.push_back(std::move(item));
        pos = comma + 1;
    }
    return out;
}

} // namespace xbs
