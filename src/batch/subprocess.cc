#include "batch/subprocess.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fs.hh"

namespace xbs
{

namespace
{

/** Typed so the scheduler can tell transient host exhaustion (fork
 *  EAGAIN, fd-table ENFILE, ...) from a broken binary and retry it. */
Status
errnoError(const std::string &what)
{
    return Status::error(errnoStatusCode(errno),
                         what + ": " + std::strerror(errno));
}

/** Make @p fd non-blocking and close-on-exec on the parent side. */
bool
prepareParentEnd(int fd)
{
    int fl = ::fcntl(fd, F_GETFL);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0)
        return false;
    int fdfl = ::fcntl(fd, F_GETFD);
    return fdfl >= 0 &&
           ::fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC) >= 0;
}

/** Drain @p fd into @p sink until EAGAIN/EOF; true on EOF. */
bool
drainFd(int fd, std::string &sink)
{
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            sink.append(buf, (std::size_t)n);
            continue;
        }
        if (n == 0)
            return true;  // EOF
        if (errno == EINTR)
            continue;
        return false;  // EAGAIN: nothing more right now
    }
}

} // anonymous namespace

Expected<Child>
spawnChild(const std::vector<std::string> &argv)
{
    if (argv.empty())
        return Status::error("empty argv");

    int outPipe[2], errPipe[2];
    if (::pipe(outPipe) != 0)
        return errnoError("pipe failed");
    if (::pipe(errPipe) != 0) {
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        return errnoError("pipe failed");
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {outPipe[0], outPipe[1], errPipe[0],
                       errPipe[1]}) {
            ::close(fd);
        }
        return errnoError("fork failed");
    }

    if (pid == 0) {
        // Child: own process group (kill escalation targets the
        // group), pipes onto stdout/stderr, then exec.
        ::setpgid(0, 0);
        ::dup2(outPipe[1], STDOUT_FILENO);
        ::dup2(errPipe[1], STDERR_FILENO);
        for (int fd : {outPipe[0], outPipe[1], errPipe[0],
                       errPipe[1]}) {
            ::close(fd);
        }
        std::vector<char *> cargv;
        for (const std::string &arg : argv)
            cargv.push_back(const_cast<char *>(arg.c_str()));
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        // exec failed: 127 is the shell convention the classifier
        // maps to JobClass::Spawn.
        _exit(127);
    }

    // Parent. Mirror the setpgid to close the race either way.
    ::setpgid(pid, pid);
    ::close(outPipe[1]);
    ::close(errPipe[1]);

    Child child;
    child.pid = pid;
    child.outFd = outPipe[0];
    child.errFd = errPipe[0];
    if (!prepareParentEnd(child.outFd) ||
        !prepareParentEnd(child.errFd)) {
        Status st = errnoError("fcntl failed");
        signalChild(child, SIGKILL);
        int raw;
        while (!reapChild(child, &raw)) {
        }
        return st;
    }
    return child;
}

void
pumpChild(Child &child)
{
    if (child.outFd >= 0 && drainFd(child.outFd, child.out)) {
        ::close(child.outFd);
        child.outFd = -1;
    }
    if (child.errFd >= 0 && drainFd(child.errFd, child.err)) {
        ::close(child.errFd);
        child.errFd = -1;
    }
}

bool
reapChild(Child &child, int *raw_status)
{
    if (!child.alive())
        return false;
    int status = 0;
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    pid_t r = ::wait4(child.pid, &status, WNOHANG, &ru);
    if (r == 0)
        return false;
    if (r < 0 && errno == EINTR)
        return false;
    if (r > 0) {
        // Per-child host accounting (Linux: ru_maxrss is in KiB).
        child.hasUsage = true;
        child.maxRssKb = (uint64_t)ru.ru_maxrss;
        child.userSec = (double)ru.ru_utime.tv_sec +
                        (double)ru.ru_utime.tv_usec / 1e6;
        child.sysSec = (double)ru.ru_stime.tv_sec +
                       (double)ru.ru_stime.tv_usec / 1e6;
        child.inBlock = (uint64_t)ru.ru_inblock;
        child.outBlock = (uint64_t)ru.ru_oublock;
    }
    // Exited (or waitpid lost it): drain the tail of both pipes and
    // close them.
    pumpChild(child);
    closeChildFds(child);
    child.pid = -1;
    *raw_status = r < 0 ? 0 : status;
    return true;
}

void
signalChild(const Child &child, int signum)
{
    if (!child.alive())
        return;
    // Negative pid: the whole process group, so wrapper-script
    // children (and anything a hung job spawned) die with it.
    if (::kill(-child.pid, signum) != 0 && errno == ESRCH)
        ::kill(child.pid, signum);
}

void
closeChildFds(Child &child)
{
    if (child.outFd >= 0) {
        ::close(child.outFd);
        child.outFd = -1;
    }
    if (child.errFd >= 0) {
        ::close(child.errFd);
        child.errFd = -1;
    }
}

} // namespace xbs
