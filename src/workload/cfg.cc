#include "workload/cfg.hh"

#include "common/logging.hh"

namespace xbs
{

int
CfgProgram::addFunction(std::string name)
{
    functions_.push_back(CfgFunction{std::move(name), {}});
    return (int)functions_.size() - 1;
}

namespace
{

unsigned
blockInstCount(const CfgBlock &b)
{
    return (unsigned)b.body.size() +
           (b.term.kind == TermKind::FallThrough ? 0 : 1);
}

bool
validLastBlock(TermKind kind)
{
    return kind == TermKind::Return || kind == TermKind::Jump ||
           kind == TermKind::IndirectJump;
}

Status
cfgError(const std::string &fn, std::string what)
{
    return Status::error("function '" + fn + "': " + std::move(what));
}

} // anonymous namespace

Expected<std::shared_ptr<const Program>>
CfgProgram::linkEx(uint64_t base_ip) const
{
    if (functions_.empty()) {
        return Status::error("program '" + name_ +
                             "' has no functions");
    }
    if (entryFunction_ < 0 ||
        (std::size_t)entryFunction_ >= functions_.size()) {
        return Status::error("entry function " +
                             std::to_string(entryFunction_) +
                             " out of range");
    }

    // Pass 1: compute the static index of the first instruction of
    // every block. Empty fall-through blocks resolve to the next
    // block's first instruction.
    std::vector<std::vector<int32_t>> blockFirst(functions_.size());
    int32_t counter = 0;
    for (std::size_t f = 0; f < functions_.size(); ++f) {
        const auto &fn = functions_[f];
        if (fn.blocks.empty())
            return cfgError(fn.name, "has no blocks");
        if (!validLastBlock(fn.blocks.back().term.kind)) {
            return cfgError(fn.name, "last block must end in a "
                            "return/jump/indirect jump");
        }
        blockFirst[f].resize(fn.blocks.size());
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            blockFirst[f][b] = counter;
            counter += (int32_t)blockInstCount(fn.blocks[b]);
        }
        // Fix up empty blocks (they alias the next block's start).
        for (std::size_t b = fn.blocks.size(); b-- > 0;) {
            if (blockInstCount(fn.blocks[b]) == 0) {
                if (b + 1 >= fn.blocks.size())
                    return cfgError(fn.name, "empty final block");
                blockFirst[f][b] = blockFirst[f][b + 1];
            }
        }
    }

    // Pass 2: emit instructions.
    auto code = std::make_shared<StaticCode>();
    std::vector<CondBehavior> conds;
    std::vector<IndirectBehavior> indirects;
    std::vector<FunctionInfo> infos;

    uint64_t cursor = base_ip;
    for (std::size_t f = 0; f < functions_.size(); ++f) {
        const auto &fn = functions_[f];
        // Align function starts, as a linker would.
        cursor = (cursor + 15) & ~uint64_t(15);

        FunctionInfo info;
        info.name = fn.name;
        info.firstIdx = blockFirst[f][0];
        info.entryIp = cursor;

        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const auto &blk = fn.blocks[b];
            for (const auto &ci : blk.body) {
                StaticInst si;
                si.ip = cursor;
                si.length = ci.length;
                si.numUops = ci.numUops;
                si.cls = InstClass::Seq;
                cursor += si.length;
                code->append(si);
            }

            const auto &t = blk.term;
            if (t.kind == TermKind::FallThrough) {
                if (b + 1 >= fn.blocks.size()) {
                    return cfgError(fn.name, "block " +
                                    std::to_string(b) +
                                    " falls off the end");
                }
                continue;
            }

            StaticInst si;
            si.ip = cursor;
            si.length = t.length;
            si.numUops = t.numUops;
            cursor += si.length;

            // The target-resolution lambdas record the first failure
            // in target_error and return 0; the switch below is
            // followed by one check so every malformed reference
            // surfaces as a Status rather than an abort.
            Status target_error;
            auto blockTarget = [&](int blockId) -> int32_t {
                if (blockId < 0 ||
                    (std::size_t)blockId >= fn.blocks.size()) {
                    if (target_error.isOk()) {
                        target_error =
                            cfgError(fn.name, "bad target block " +
                                     std::to_string(blockId));
                    }
                    return 0;
                }
                return blockFirst[f][blockId];
            };
            auto funcEntry = [&](int funcId) -> int32_t {
                if (funcId < 0 ||
                    (std::size_t)funcId >= functions_.size()) {
                    if (target_error.isOk()) {
                        target_error =
                            cfgError(fn.name, "bad callee " +
                                     std::to_string(funcId));
                    }
                    return 0;
                }
                return blockFirst[funcId][0];
            };

            switch (t.kind) {
              case TermKind::CondBranch:
                si.cls = InstClass::CondBranch;
                si.takenIdx = blockTarget(t.targetBlock);
                si.behaviorId = (int32_t)conds.size();
                conds.push_back(t.cond);
                if (b + 1 >= fn.blocks.size()) {
                    return cfgError(fn.name, "conditional branch in "
                                    "final block");
                }
                break;
              case TermKind::Jump:
                si.cls = InstClass::DirectJump;
                si.takenIdx = blockTarget(t.targetBlock);
                break;
              case TermKind::Call: {
                si.cls = InstClass::DirectCall;
                if (t.calleeFunctions.size() != 1) {
                    return cfgError(fn.name, "direct call needs "
                                    "exactly one callee");
                }
                si.takenIdx = funcEntry(t.calleeFunctions[0]);
                if (b + 1 >= fn.blocks.size())
                    return cfgError(fn.name, "call in final block");
                break;
              }
              case TermKind::IndirectJump: {
                si.cls = InstClass::IndirectJump;
                IndirectBehavior ib;
                for (int tb : t.targetBlocks)
                    ib.targets.push_back(blockTarget(tb));
                ib.weights = t.weights;
                if (ib.weights.empty())
                    ib.weights.assign(ib.targets.size(), 1.0);
                ib.repeatProb = t.repeatProb;
                ib.seed = 0x9E37 + (uint64_t)code->size() * 0x85EB;
                si.behaviorId = (int32_t)indirects.size();
                indirects.push_back(std::move(ib));
                break;
              }
              case TermKind::IndirectCall: {
                si.cls = InstClass::IndirectCall;
                IndirectBehavior ib;
                for (int cf : t.calleeFunctions)
                    ib.targets.push_back(funcEntry(cf));
                ib.weights = t.weights;
                if (ib.weights.empty())
                    ib.weights.assign(ib.targets.size(), 1.0);
                ib.repeatProb = t.repeatProb;
                ib.seed = 0x9E37 + (uint64_t)code->size() * 0x85EB;
                si.behaviorId = (int32_t)indirects.size();
                indirects.push_back(std::move(ib));
                if (b + 1 >= fn.blocks.size()) {
                    return cfgError(fn.name, "indirect call in final "
                                    "block");
                }
                break;
              }
              case TermKind::Return:
                si.cls = InstClass::Return;
                break;
              default:
                xbs_panic("unhandled terminator kind");
            }
            if (!target_error.isOk())
                return target_error;

            code->append(si);
        }

        info.lastIdx = (int32_t)code->size() - 1;
        infos.push_back(std::move(info));
    }

    code->finalize();

    int32_t entry = blockFirst[entryFunction_][0];
    return std::shared_ptr<const Program>(std::make_shared<Program>(
        code, std::move(conds), std::move(indirects), entry,
        std::move(infos), name_));
}

std::shared_ptr<const Program>
CfgProgram::link(uint64_t base_ip) const
{
    Expected<std::shared_ptr<const Program>> p = linkEx(base_ip);
    if (!p.ok())
        xbs_fatal("%s", p.status().toString().c_str());
    return p.take();
}

} // namespace xbs
