/**
 * @file
 * Tunable parameters of synthetic workload generation.
 *
 * A WorkloadProfile drives ProgramBuilder. The suite presets are
 * calibrated so aggregate properties match what the paper reports for
 * its trace sets: average basic block length ~7.7 uops, XB ~8.0,
 * promoted XB ~10.0, dual XB ~12.7 (Figure 1), with suite-dependent
 * code footprints (SYSmark32-like being the largest, SPECint95-like
 * the loopiest, Games-like the most indirect-branch heavy).
 */

#ifndef XBS_WORKLOAD_PROFILE_HH
#define XBS_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xbs
{

struct WorkloadProfile
{
    std::string name = "default";
    std::string suite = "misc";
    uint64_t seed = 1;

    /// @{ Static code size knobs.
    unsigned numFunctions = 120;
    double itemsPerFunctionMean = 10.0;  ///< structured items/function
    double bodyInstMean = 2.4;           ///< body insts per block
    /// @}

    /// @{ Instruction encoding.
    double uopsPerInstMean = 1.55;  ///< expansion, capped at 4
    double instLenMean = 3.4;       ///< bytes, capped at 15
    /// @}

    /// @{ Structured-item mix (relative weights).
    double wStraight = 1.0;
    double wIfElse = 1.6;
    double wLoop = 0.8;
    double wSwitch = 0.15;
    double wCall = 0.9;
    /// @}

    /// @{ Conditional branch behavior.
    double monotonicFraction = 0.40;  ///< >=99.2% biased (promotable)
    double patternFraction = 0.15;    ///< short repeating patterns
    double biasLow = 0.10;            ///< ordinary bias range low
    double biasHigh = 0.90;           ///< ordinary bias range high
    double shortTripMean = 6.0;       ///< short loop trip count mean
    double longLoopFraction = 0.15;   ///< loops with promotable trips
    uint32_t longTripMin = 128;
    uint32_t longTripMax = 1024;
    double tripJitter = 0.05;
    /// @}

    /// @{ Indirect control flow.
    unsigned switchFanoutMax = 6;
    double indirectCallFraction = 0.12;  ///< of call sites
    unsigned icallFanoutMax = 4;
    double indirectRepeatProb = 0.65;
    /// @}

    /// @{ Call-graph / dynamic-cost shape.
    double calleeZipfS = 1.0;      ///< skew of callee popularity
    unsigned maxNestDepth = 3;     ///< if/loop nesting limit
    double armItemMean = 1.2;      ///< items per if/loop arm
    double nestedCallScale = 0.35; ///< call weight damping inside loops

    /**
     * Estimated dynamic instructions per iteration of the entry
     * function's outer loop. Call sites whose callee would blow the
     * caller's share of this budget are downgraded to cheaper callees
     * (or dropped), bounding the cost of the whole call tree. This is
     * the main lever on the dynamic code footprint: a large budget
     * lets one outer iteration walk a large fraction of the program.
     */
    double mainIterationBudget = 40000.0;

    /** Exponent of the per-function budget decay: budget(f) =
     *  mainIterationBudget / (1+f)^budgetDecay. */
    double budgetDecay = 0.85;
    /// @}
};

/** Suite presets. @p name and @p seed are filled in by the catalog. */
WorkloadProfile specIntProfile();
WorkloadProfile sysmarkProfile();
WorkloadProfile gamesProfile();

} // namespace xbs

#endif // XBS_WORKLOAD_PROFILE_HH
