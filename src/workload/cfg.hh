/**
 * @file
 * Block-level control-flow-graph IR for synthetic programs.
 *
 * CfgProgram is the public construction API: build functions out of
 * basic blocks, attach terminators and behaviors, then link() to get
 * an executable, flattened Program. Layout rules:
 *
 *  - blocks are laid out in vector order; a block without a
 *    terminator (TermKind::FallThrough) falls into the next block;
 *  - a conditional branch falls through to the next block when
 *    not taken and goes to its target block when taken;
 *  - the last block of a function must end in a definite transfer
 *    (return, jump, or indirect jump).
 */

#ifndef XBS_WORKLOAD_CFG_HH
#define XBS_WORKLOAD_CFG_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "isa/static_inst.hh"
#include "workload/behavior.hh"
#include "workload/program.hh"

namespace xbs
{

/** A body (non-control) instruction under construction. */
struct CfgInst
{
    uint8_t length = 3;
    uint8_t numUops = 1;
};

/** How a basic block ends. */
enum class TermKind : uint8_t
{
    FallThrough,   ///< no terminator instruction; run into next block
    CondBranch,
    Jump,
    Call,
    IndirectJump,
    IndirectCall,
    Return,
};

/** Terminator of a basic block. */
struct CfgTerminator
{
    TermKind kind = TermKind::FallThrough;

    /** Encoded size of the terminator instruction itself. */
    uint8_t length = 2;
    uint8_t numUops = 1;

    /** CondBranch taken target / Jump target: block id in the same
     *  function. */
    int targetBlock = -1;

    /** Call / one entry per possible callee for IndirectCall. */
    std::vector<int> calleeFunctions;

    /** IndirectJump targets: block ids in the same function. */
    std::vector<int> targetBlocks;

    /** Weights for indirect target selection (optional). */
    std::vector<double> weights;
    double repeatProb = 0.6;

    /** Behavior of a conditional branch. */
    CondBehavior cond;
};

/** A basic block under construction. */
struct CfgBlock
{
    std::vector<CfgInst> body;
    CfgTerminator term;
};

/** A function under construction. */
struct CfgFunction
{
    std::string name;
    std::vector<CfgBlock> blocks;

    /** Append an empty block; returns its id. */
    int
    addBlock()
    {
        blocks.emplace_back();
        return (int)blocks.size() - 1;
    }
};

/**
 * A whole program under construction. Function 0 is the entry unless
 * overridden. Instruction addresses are assigned at link time:
 * functions are placed sequentially starting at baseIp with small
 * alignment gaps, mimicking a linker.
 */
class CfgProgram
{
  public:
    explicit CfgProgram(std::string name = "program")
        : name_(std::move(name))
    {
    }

    /** Append an empty function; returns its id. */
    int addFunction(std::string name);

    CfgFunction &function(int id) { return functions_[id]; }
    const CfgFunction &function(int id) const { return functions_[id]; }
    std::size_t numFunctions() const { return functions_.size(); }

    void setEntry(int function_id) { entryFunction_ = function_id; }

    /**
     * Flatten to an executable Program. Validates structural rules
     * (dangling targets, missing terminators, empty functions) and
     * reports violations as a Status naming the offending function,
     * so malformed workload definitions surface as recoverable
     * data errors (exit code 2 in the tools).
     *
     * @param base_ip address of the first function
     */
    Expected<std::shared_ptr<const Program>>
    linkEx(uint64_t base_ip = 0x1000) const;

    /** Legacy wrapper around linkEx(): fatal() on any violation. */
    std::shared_ptr<const Program> link(uint64_t base_ip = 0x1000) const;

  private:
    std::string name_;
    std::vector<CfgFunction> functions_;
    int entryFunction_ = 0;
};

} // namespace xbs

#endif // XBS_WORKLOAD_CFG_HH
