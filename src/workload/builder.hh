/**
 * @file
 * Structured random program synthesis.
 *
 * ProgramBuilder emits a reducible CFG out of nested structured items
 * (straight-line chains, if/else diamonds with fall-through joins,
 * natural loops, indirect-jump switches, and call sites), wired into
 * a DAG call graph (callee index > caller index, so no recursion and
 * guaranteed termination). The fall-through join points are what give
 * the trace cache its redundancy and the XBC its multiple entry
 * points, exactly as in the paper's motivating example.
 */

#ifndef XBS_WORKLOAD_BUILDER_HH
#define XBS_WORKLOAD_BUILDER_HH

#include <memory>

#include "common/random.hh"
#include "workload/cfg.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace xbs
{

class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const WorkloadProfile &profile);

    /** Synthesize and link a program. Deterministic in the profile. */
    std::shared_ptr<const Program> build();

    /** Access the intermediate CFG (valid after build()). */
    const CfgProgram &cfg() const { return cfg_; }

  private:
    /** Append body instructions to the (open) last block of @p fn. */
    void fillBody(CfgFunction &fn, double mean_scale = 1.0);

    /** Make sure the last block of @p fn is open (no terminator). */
    CfgBlock &openBlock(CfgFunction &fn);

    /** Emit a sequence of items into @p fn. */
    void genItems(CfgFunction &fn, int func_id, double budget,
                  unsigned depth, double call_boost = 1.0);

    void genIfElse(CfgFunction &fn, int func_id, unsigned depth);
    void genLoop(CfgFunction &fn, int func_id, unsigned depth);
    void genSwitch(CfgFunction &fn, int func_id);
    void genCall(CfgFunction &fn, int func_id);

    /** Draw behavior for an if/else conditional branch. */
    CondBehavior drawCondBehavior();

    /** Draw a loop trip count (short, or long and promotable). */
    uint32_t drawLoopTrip();

    /**
     * Draw a callee for a call in @p func_id: popularity-weighted
     * over later functions, rejecting candidates whose estimated
     * dynamic cost would exceed the caller's remaining budget.
     * @return -1 when no affordable callee exists.
     */
    int drawCallee(int func_id);

    /** Current execution-probability/iteration multiplier. */
    double multiplier() const;

    /** Number of enclosing loops in the multiplier stack. */
    unsigned loopDepth() const;

    uint8_t drawInstLen();
    uint8_t drawInstUops();
    uint8_t drawBranchLen();

    WorkloadProfile profile_;
    Rng rng_;
    CfgProgram cfg_;
    uint64_t behaviorSeedCounter_ = 0x51ED2700;

    /// @{ Per-build dynamic-cost accounting.
    std::vector<double> estCost_;   ///< per-function invocation cost
    std::vector<double> popCum_;    ///< cumulative popularity weights
    std::vector<double> multStack_; ///< enclosing loop trips/arm probs
    double curCost_ = 0.0;          ///< cost of function under build
    double budget_ = 1e18;          ///< its budget
    double perSiteCap_ = 1e18;      ///< per-call-site cost cap
    /// @}
};

/** Convenience: build a program straight from a profile. */
std::shared_ptr<const Program>
buildProgram(const WorkloadProfile &profile);

} // namespace xbs

#endif // XBS_WORKLOAD_BUILDER_HH
