/**
 * @file
 * An executable synthetic program: flattened static code plus the
 * behavior tables that drive its dynamic control flow.
 */

#ifndef XBS_WORKLOAD_PROGRAM_HH
#define XBS_WORKLOAD_PROGRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/static_inst.hh"
#include "workload/behavior.hh"

namespace xbs
{

/** Span of one function within the flattened code, for diagnostics. */
struct FunctionInfo
{
    std::string name;
    int32_t firstIdx = 0;  ///< first instruction index
    int32_t lastIdx = 0;   ///< last instruction index (inclusive)
    uint64_t entryIp = 0;
};

/**
 * Immutable program image. CondBranch instructions carry a behaviorId
 * into condBehaviors; IndirectJump/IndirectCall into
 * indirectBehaviors.
 */
class Program
{
  public:
    Program(std::shared_ptr<const StaticCode> code,
            std::vector<CondBehavior> cond_behaviors,
            std::vector<IndirectBehavior> indirect_behaviors,
            int32_t entry_idx,
            std::vector<FunctionInfo> functions,
            std::string name);

    const StaticCode &code() const { return *code_; }
    std::shared_ptr<const StaticCode> codePtr() const { return code_; }

    const std::vector<CondBehavior> &condBehaviors() const
    {
        return condBehaviors_;
    }

    const std::vector<IndirectBehavior> &indirectBehaviors() const
    {
        return indirectBehaviors_;
    }

    int32_t entryIdx() const { return entryIdx_; }

    const std::vector<FunctionInfo> &functions() const
    {
        return functions_;
    }

    const std::string &name() const { return name_; }

    /** Sanity-check behavior ids and entry point; panics on error. */
    void validate() const;

  private:
    std::shared_ptr<const StaticCode> code_;
    std::vector<CondBehavior> condBehaviors_;
    std::vector<IndirectBehavior> indirectBehaviors_;
    int32_t entryIdx_;
    std::vector<FunctionInfo> functions_;
    std::string name_;
};

} // namespace xbs

#endif // XBS_WORKLOAD_PROGRAM_HH
