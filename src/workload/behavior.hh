/**
 * @file
 * Dynamic branch behavior specifications.
 *
 * A synthetic program attaches a behavior to every conditional branch
 * and every indirect transfer. Behaviors are immutable specs; the
 * Executor keeps the mutable runtime state (loop counters, pattern
 * positions, RNG streams), so a Program can be shared by many
 * executors.
 */

#ifndef XBS_WORKLOAD_BEHAVIOR_HH
#define XBS_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <vector>

namespace xbs
{

/** Behavior of a conditional branch. */
struct CondBehavior
{
    enum class Kind : uint8_t
    {
        /**
         * Loop latch: taken while iterating, not-taken on exit.
         * The trip count is fixed per branch (tripCount) with a
         * small per-entry jitter probability, which is what makes
         * GSHARE's history useful.
         */
        Loop,

        /** Independent Bernoulli draws with P(taken) = biasTaken. */
        Biased,

        /** Fixed repeating taken/not-taken pattern. */
        Pattern,
    };

    Kind kind = Kind::Biased;

    double biasTaken = 0.5;      ///< Biased: probability of taken
    uint32_t tripCount = 8;      ///< Loop: iterations per entry
    double tripJitter = 0.05;    ///< Loop: P(trip varies by +/-1)
    uint32_t patternBits = 0x2;  ///< Pattern: LSB-first directions
    uint8_t patternLen = 2;      ///< Pattern: length in bits (<=32)
    uint64_t seed = 1;           ///< per-branch RNG stream seed
};

/** Behavior of an indirect jump/call: a weighted target set. */
struct IndirectBehavior
{
    /** Static instruction indices of the possible targets. */
    std::vector<int32_t> targets;

    /** Relative weights (same arity as targets). */
    std::vector<double> weights;

    /**
     * Temporal locality: probability that an execution repeats the
     * previously chosen target instead of drawing fresh. High values
     * make a last-target indirect predictor effective, mirroring
     * phase behavior in real dispatch loops.
     */
    double repeatProb = 0.6;

    uint64_t seed = 1;
};

} // namespace xbs

#endif // XBS_WORKLOAD_BEHAVIOR_HH
