/**
 * @file
 * The workload catalog: 21 named synthetic traces grouped into three
 * suites, standing in for the paper's SPECint95 (8), SYSmark32 for
 * Windows 95 (8), and Games (5) trace sets.
 *
 * Each entry pairs a suite preset with per-workload parameter
 * deviations (code footprint, loopiness, indirection) so the traces
 * differ the way real applications do, and a fixed seed so every run
 * of every bench sees identical traces.
 */

#ifndef XBS_WORKLOAD_CATALOG_HH
#define XBS_WORKLOAD_CATALOG_HH

#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "trace/trace.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace xbs
{

/** One catalog entry. */
struct CatalogEntry
{
    std::string name;
    std::string suite;
    WorkloadProfile profile;
};

/** All 21 workloads in suite order (SPECint95, SYSmark32, Games). */
const std::vector<CatalogEntry> &workloadCatalog();

/** Names of the three suites in catalog order. */
const std::vector<std::string> &suiteNames();

/** All catalog workload names, in catalog order (for matrix
 *  enumeration in the batch layer). */
std::vector<std::string> catalogWorkloadNames();

/** Find an entry by name; nullptr if unknown. */
const CatalogEntry *findWorkloadPtr(const std::string &name);

/** Find an entry by name; error Status if unknown. */
Expected<const CatalogEntry *> findWorkloadEx(const std::string &name);

/** Legacy wrapper around findWorkloadEx(): fatal() if unknown. */
const CatalogEntry &findWorkload(const std::string &name);

/** Build (and memoize per call site) the program for an entry. */
std::shared_ptr<const Program> buildCatalogProgram(
    const CatalogEntry &entry);

/**
 * Produce the dynamic trace for a workload.
 *
 * @param name  catalog entry name
 * @param num_instructions  trace length; 0 selects the default
 *        (XBS_TRACE_LEN env var, or 2,000,000; XBS_FAST=1 shrinks the
 *        default to 300,000 for quick runs)
 */
Trace makeCatalogTrace(const std::string &name,
                       uint64_t num_instructions = 0);

/** The default trace length after env overrides. */
uint64_t defaultTraceLength();

} // namespace xbs

#endif // XBS_WORKLOAD_CATALOG_HH
