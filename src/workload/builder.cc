#include "workload/builder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xbs
{

ProgramBuilder::ProgramBuilder(const WorkloadProfile &profile)
    : profile_(profile), rng_(profile.seed), cfg_(profile.name)
{
}

uint8_t
ProgramBuilder::drawInstLen()
{
    return (uint8_t)rng_.boundedGeometric(profile_.instLenMean, 15);
}

uint8_t
ProgramBuilder::drawInstUops()
{
    return (uint8_t)rng_.boundedGeometric(profile_.uopsPerInstMean, 4);
}

uint8_t
ProgramBuilder::drawBranchLen()
{
    // Jcc rel8 (2 bytes) or rel32 (6 bytes).
    return rng_.chance(0.7) ? 2 : 6;
}

double
ProgramBuilder::multiplier() const
{
    double m = 1.0;
    for (double v : multStack_)
        m *= v;
    return m;
}

unsigned
ProgramBuilder::loopDepth() const
{
    unsigned d = 0;
    for (double v : multStack_) {
        if (v > 1.0)
            ++d;
    }
    return d;
}

CfgBlock &
ProgramBuilder::openBlock(CfgFunction &fn)
{
    if (fn.blocks.empty() ||
        fn.blocks.back().term.kind != TermKind::FallThrough) {
        fn.addBlock();
    }
    return fn.blocks.back();
}

void
ProgramBuilder::fillBody(CfgFunction &fn, double mean_scale)
{
    CfgBlock &blk = openBlock(fn);
    double mean = std::max(1.0, profile_.bodyInstMean * mean_scale);
    unsigned n = rng_.boundedGeometric(mean, 16);
    for (unsigned i = 0; i < n; ++i) {
        CfgInst ci;
        ci.length = drawInstLen();
        ci.numUops = drawInstUops();
        blk.body.push_back(ci);
    }
    curCost_ += (double)n * multiplier();
}

CondBehavior
ProgramBuilder::drawCondBehavior()
{
    CondBehavior cb;
    cb.seed = behaviorSeedCounter_++;
    double u = rng_.uniform();
    if (u < profile_.monotonicFraction) {
        // Promotable branch: >= 99.2% biased to one direction.
        cb.kind = CondBehavior::Kind::Biased;
        double p = 1.0 - rng_.uniform() * 0.006;  // in (0.994, 1.0]
        cb.biasTaken = rng_.chance(0.5) ? p : 1.0 - p;
    } else if (u < profile_.monotonicFraction +
                       profile_.patternFraction) {
        cb.kind = CondBehavior::Kind::Pattern;
        cb.patternLen = (uint8_t)rng_.range(2, 8);
        cb.patternBits = (uint32_t)rng_.below(1u << cb.patternLen);
        if (cb.patternBits == 0)
            cb.patternBits = 1;
    } else {
        // Ordinary data-dependent branches are bimodally biased in
        // real code: most sit near one direction (predictable by
        // a bimodal component), a minority are genuinely hard.
        cb.kind = CondBehavior::Kind::Biased;
        double p;
        if (rng_.chance(0.75)) {
            p = 0.78 + rng_.uniform() * 0.20;  // strongly biased
        } else {
            p = profile_.biasLow +
                rng_.uniform() *
                    (profile_.biasHigh - profile_.biasLow);
        }
        cb.biasTaken = rng_.chance(0.5) ? p : 1.0 - p;
    }
    return cb;
}

uint32_t
ProgramBuilder::drawLoopTrip()
{
    // Long (promotable) trips only outside other loops: nested long
    // loops would concentrate the whole trace into a few dozen uops.
    if (loopDepth() == 0 && rng_.chance(profile_.longLoopFraction)) {
        return (uint32_t)rng_.range(profile_.longTripMin,
                                    profile_.longTripMax);
    }
    return std::max<uint32_t>(
        2, rng_.boundedGeometric(profile_.shortTripMean, 64));
}

int
ProgramBuilder::drawCallee(int func_id)
{
    int first = func_id + 1;
    int last = (int)cfg_.numFunctions() - 1;
    if (first > last)
        return -1;

    // Sample by global popularity over [first, last] via the
    // cumulative weight table built in build().
    double lo = first > 0 ? popCum_[first - 1] : 0.0;
    double hi = popCum_[last];
    if (hi <= lo)
        return -1;

    double remaining = std::min(budget_ - curCost_, perSiteCap_);
    double mult = multiplier();

    for (int attempt = 0; attempt < 8; ++attempt) {
        double u = lo + rng_.uniform() * (hi - lo);
        auto it = std::lower_bound(popCum_.begin() + first,
                                   popCum_.begin() + last + 1, u);
        int cand = (int)(it - popCum_.begin());
        if (cand < first || cand > last)
            continue;
        if (mult * estCost_[cand] <= remaining)
            return cand;
    }
    return -1;  // every affordable draw failed; caller emits straight
}

void
ProgramBuilder::genIfElse(CfgFunction &fn, int func_id, unsigned depth)
{
    // Layout: cond (taken -> else) | then.. | jmp join | else.. | join
    // The else arm falls through into the join: that join point is a
    // multi-entry location (jump target + fall-through predecessor).
    fillBody(fn);
    openBlock(fn);
    int condId = (int)fn.blocks.size() - 1;
    curCost_ += multiplier();  // the branch itself

    // Then arm (executes with roughly half probability).
    multStack_.push_back(0.55);
    fn.addBlock();
    double arm_budget = 1.0 + rng_.uniform() * profile_.armItemMean;
    if (depth < profile_.maxNestDepth)
        genItems(fn, func_id, arm_budget, depth + 1);
    fillBody(fn, 0.7);
    int thenEndId = (int)fn.blocks.size() - 1;
    multStack_.pop_back();

    // Else arm (the taken target).
    multStack_.push_back(0.45);
    fn.addBlock();
    int elseId = (int)fn.blocks.size() - 1;
    if (depth < profile_.maxNestDepth)
        genItems(fn, func_id, arm_budget * 0.7, depth + 1);
    fillBody(fn, 0.7);
    multStack_.pop_back();

    // Join block: else falls through into it.
    fn.addBlock();
    int joinId = (int)fn.blocks.size() - 1;

    fn.blocks[condId].term.kind = TermKind::CondBranch;
    fn.blocks[condId].term.targetBlock = elseId;
    fn.blocks[condId].term.length = drawBranchLen();
    fn.blocks[condId].term.numUops = 1;
    fn.blocks[condId].term.cond = drawCondBehavior();

    fn.blocks[thenEndId].term.kind = TermKind::Jump;
    fn.blocks[thenEndId].term.targetBlock = joinId;
    fn.blocks[thenEndId].term.length = rng_.chance(0.7) ? 2 : 5;
    fn.blocks[thenEndId].term.numUops = 1;
}

void
ProgramBuilder::genLoop(CfgFunction &fn, int func_id, unsigned depth)
{
    // preheader (falls in) | header.. body items.. latch | exit
    fillBody(fn, 0.6);
    openBlock(fn);

    uint32_t trip = drawLoopTrip();
    multStack_.push_back((double)trip);

    fn.addBlock();
    int headerId = (int)fn.blocks.size() - 1;
    fillBody(fn, 0.8);
    if (depth < profile_.maxNestDepth) {
        double body_budget = 1.0 + rng_.uniform() * profile_.armItemMean;
        genItems(fn, func_id, body_budget, depth + 1);
    }
    fillBody(fn, 0.8);
    int latchId = (int)fn.blocks.size() - 1;
    curCost_ += multiplier();  // the latch branch per iteration
    multStack_.pop_back();

    fn.addBlock();  // exit block; latch falls through here when done

    CondBehavior cb;
    cb.kind = CondBehavior::Kind::Loop;
    cb.tripCount = trip;
    cb.tripJitter = profile_.tripJitter;
    cb.seed = behaviorSeedCounter_++;

    fn.blocks[latchId].term.kind = TermKind::CondBranch;
    fn.blocks[latchId].term.targetBlock = headerId;
    fn.blocks[latchId].term.length = 2;  // short backward Jcc
    fn.blocks[latchId].term.numUops = 1;
    fn.blocks[latchId].term.cond = cb;
}

void
ProgramBuilder::genSwitch(CfgFunction &fn, int func_id)
{
    (void)func_id;
    fillBody(fn, 0.8);
    openBlock(fn);
    int dispatchId = (int)fn.blocks.size() - 1;
    curCost_ += 2.0 * multiplier();

    unsigned fanout =
        (unsigned)rng_.range(2, (int64_t)profile_.switchFanoutMax);
    std::vector<int> caseIds;
    multStack_.push_back(1.0 / (double)fanout);
    for (unsigned c = 0; c < fanout; ++c) {
        fn.addBlock();
        caseIds.push_back((int)fn.blocks.size() - 1);
        fillBody(fn, 0.8);
    }
    multStack_.pop_back();
    fn.addBlock();
    int joinId = (int)fn.blocks.size() - 1;

    // All cases but the last jump to the join; the last falls through.
    for (unsigned c = 0; c + 1 < fanout; ++c) {
        fn.blocks[caseIds[c]].term.kind = TermKind::Jump;
        fn.blocks[caseIds[c]].term.targetBlock = joinId;
        fn.blocks[caseIds[c]].term.length = 2;
        fn.blocks[caseIds[c]].term.numUops = 1;
    }

    auto &t = fn.blocks[dispatchId].term;
    t.kind = TermKind::IndirectJump;
    t.length = 3;
    t.numUops = 2;  // load target + jump
    t.targetBlocks = caseIds;
    t.repeatProb = profile_.indirectRepeatProb;
    t.weights.clear();
    for (unsigned c = 0; c < fanout; ++c)
        t.weights.push_back(1.0 / (double)(c + 1));  // skewed cases
}

void
ProgramBuilder::genCall(CfgFunction &fn, int func_id)
{
    int callee = drawCallee(func_id);
    if (callee < 0) {
        fillBody(fn);
        return;
    }

    fillBody(fn, 0.8);
    openBlock(fn);
    int siteId = (int)fn.blocks.size() - 1;
    fn.addBlock();  // continuation after return

    auto &t = fn.blocks[siteId].term;
    double mult = multiplier();
    if (rng_.chance(profile_.indirectCallFraction)) {
        t.kind = TermKind::IndirectCall;
        unsigned fanout = (unsigned)rng_.range(
            2, (int64_t)profile_.icallFanoutMax);
        t.calleeFunctions.clear();
        t.calleeFunctions.push_back(callee);
        for (unsigned c = 1; c < fanout; ++c) {
            int extra = drawCallee(func_id);
            if (extra >= 0)
                t.calleeFunctions.push_back(extra);
        }
        t.repeatProb = profile_.indirectRepeatProb;
        t.length = 3;
        t.numUops = 2;
        double avg = 0.0;
        for (int cf : t.calleeFunctions)
            avg += estCost_[cf];
        avg /= (double)t.calleeFunctions.size();
        curCost_ += mult * (avg + 4.0);
    } else {
        t.kind = TermKind::Call;
        t.calleeFunctions = {callee};
        t.length = 5;  // call rel32
        t.numUops = 2; // push return IP + jump
        curCost_ += mult * (estCost_[callee] + 4.0);
    }
}

void
ProgramBuilder::genItems(CfgFunction &fn, int func_id, double budget,
                         unsigned depth, double call_boost)
{
    while (budget > 0.0) {
        std::vector<double> weights = {
            profile_.wStraight, profile_.wIfElse, profile_.wLoop,
            profile_.wSwitch, profile_.wCall * call_boost,
        };
        if (depth >= profile_.maxNestDepth)
            weights[1] = weights[2] = 0.0;  // no further nesting
        // Damp calls inside loops: hot inner loops are call-free in
        // real code, and this bounds the cost product.
        weights[4] *= std::pow(profile_.nestedCallScale,
                               (double)loopDepth());
        if (curCost_ >= budget_)
            weights[4] = 0.0;

        budget -= 1.0;
        switch (rng_.weighted(weights)) {
          case 0:
            fillBody(fn);
            break;
          case 1:
            genIfElse(fn, func_id, depth);
            budget -= 1.0;  // diamonds are bigger items
            break;
          case 2:
            genLoop(fn, func_id, depth);
            budget -= 1.0;
            break;
          case 3:
            genSwitch(fn, func_id);
            budget -= 1.0;
            break;
          case 4:
            genCall(fn, func_id);
            break;
          default:
            xbs_panic("bad item kind");
        }
    }
}

std::shared_ptr<const Program>
ProgramBuilder::build()
{
    const unsigned n = profile_.numFunctions;
    for (unsigned f = 0; f < n; ++f)
        cfg_.addFunction("f" + std::to_string(f));

    // Global popularity: a random permutation ranks the functions;
    // popular functions attract call sites from everywhere, giving
    // them many return sites (multi-entry XBs) and hot bodies.
    std::vector<unsigned> perm(n);
    for (unsigned i = 0; i < n; ++i)
        perm[i] = i;
    for (unsigned i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng_.below(i)]);
    popCum_.assign(n, 0.0);
    double acc = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        acc += 1.0 / std::pow((double)(perm[i] + 1),
                              profile_.calleeZipfS);
        popCum_[i] = acc;
    }

    estCost_.assign(n, 0.0);

    // Build leaves first so call sites know their callees' cost.
    for (unsigned fi = n; fi-- > 0;) {
        CfgFunction &fn = cfg_.function((int)fi);
        curCost_ = 0.0;
        budget_ = profile_.mainIterationBudget /
                  std::pow((double)(fi + 1), profile_.budgetDecay);
        perSiteCap_ = 1e18;
        multStack_.clear();

        double items = std::max(
            2.0, (double)rng_.boundedGeometric(
                     profile_.itemsPerFunctionMean, 60));

        if (fi == 0) {
            // The entry function wraps its body in an effectively
            // endless loop so the executor can emit arbitrarily long
            // traces without restarting. The body is a wide driver
            // sequence calling a large sample of the program, so one
            // outer iteration covers a realistic code footprint.
            budget_ = 1e18;
            perSiteCap_ = profile_.mainIterationBudget * 0.2;
            fillBody(fn, 0.5);
            openBlock(fn);
            fn.addBlock();
            int headerId = (int)fn.blocks.size() - 1;
            double driver_items =
                std::max(items, 0.6 * (double)n);
            genItems(fn, 0, driver_items, 1, 3.0);
            fillBody(fn, 0.5);
            int latchId = (int)fn.blocks.size() - 1;
            fn.addBlock();

            CondBehavior cb;
            cb.kind = CondBehavior::Kind::Loop;
            cb.tripCount = 1u << 30;
            cb.tripJitter = 0.0;
            cb.seed = behaviorSeedCounter_++;
            fn.blocks[latchId].term.kind = TermKind::CondBranch;
            fn.blocks[latchId].term.targetBlock = headerId;
            fn.blocks[latchId].term.length = 6;
            fn.blocks[latchId].term.numUops = 1;
            fn.blocks[latchId].term.cond = cb;
        } else {
            genItems(fn, (int)fi, items, 0);
        }

        // Close the function with an epilogue + return.
        fillBody(fn, 0.5);
        CfgBlock &last = openBlock(fn);
        last.term.kind = TermKind::Return;
        last.term.length = 1;
        last.term.numUops = 2;  // pop return IP + jump
        curCost_ += 2.0;
        estCost_[fi] = std::max(curCost_, 1.0);
    }

    return cfg_.link(0x400000 + (rng_.below(256) << 12));
}

std::shared_ptr<const Program>
buildProgram(const WorkloadProfile &profile)
{
    ProgramBuilder builder(profile);
    return builder.build();
}

} // namespace xbs
