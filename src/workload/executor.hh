/**
 * @file
 * Program executor: interprets a Program's control flow and produces
 * a dynamic Trace of a requested length.
 *
 * The executor holds all mutable behavior state (loop counters,
 * pattern positions, per-branch RNG streams, the call stack), so a
 * Program may be shared among executors and runs are reproducible
 * from (program, seed).
 */

#ifndef XBS_WORKLOAD_EXECUTOR_HH
#define XBS_WORKLOAD_EXECUTOR_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "trace/trace.hh"
#include "workload/program.hh"

namespace xbs
{

class Executor
{
  public:
    explicit Executor(std::shared_ptr<const Program> program,
                      uint64_t seed = 0);

    /**
     * Execute and record @p num_instructions dynamic instructions.
     * If the program returns from its entry function, execution
     * restarts at the entry (mimicking a run-to-completion loop).
     */
    Trace run(uint64_t num_instructions);

    /** Single-step interface used by tests: next instruction index. */
    int32_t step();

    /** Dynamic footprint: unique static instructions touched so far. */
    uint64_t uniqueInstsTouched() const { return uniqueTouched_; }

  private:
    bool evalCond(int32_t behavior_id);
    int32_t evalIndirect(int32_t behavior_id);

    struct CondState
    {
        Rng rng{1};
        uint32_t remaining = 0;   ///< Loop: iterations left
        bool primed = false;
        uint32_t patternPos = 0;
    };

    struct IndirectState
    {
        Rng rng{1};
        int32_t lastTarget = kNoTarget;
    };

    std::shared_ptr<const Program> program_;
    std::vector<CondState> condStates_;
    std::vector<IndirectState> indirectStates_;
    std::vector<int32_t> callStack_;
    std::vector<bool> touched_;
    uint64_t uniqueTouched_ = 0;
    int32_t pc_;
    bool lastTaken_ = false;

  public:
    /** Direction of the most recent conditional branch stepped. */
    bool lastTaken() const { return lastTaken_; }
};

/** Convenience: build, execute, and name a trace in one call. */
Trace makeTrace(std::shared_ptr<const Program> program,
                uint64_t num_instructions, uint64_t seed = 0);

} // namespace xbs

#endif // XBS_WORKLOAD_EXECUTOR_HH
