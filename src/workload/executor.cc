#include "workload/executor.hh"

#include "common/logging.hh"

namespace xbs
{

Executor::Executor(std::shared_ptr<const Program> program,
                   uint64_t seed)
    : program_(std::move(program))
{
    const auto &conds = program_->condBehaviors();
    condStates_.resize(conds.size());
    for (std::size_t i = 0; i < conds.size(); ++i)
        condStates_[i].rng = Rng(conds[i].seed ^ (seed * 0x9E3779B9));

    const auto &inds = program_->indirectBehaviors();
    indirectStates_.resize(inds.size());
    for (std::size_t i = 0; i < inds.size(); ++i)
        indirectStates_[i].rng = Rng(inds[i].seed ^ (seed * 0x85EBCA6B));

    touched_.assign(program_->code().size(), false);
    pc_ = program_->entryIdx();
    callStack_.reserve(256);
}

bool
Executor::evalCond(int32_t behavior_id)
{
    const auto &b = program_->condBehaviors()[behavior_id];
    auto &s = condStates_[behavior_id];
    switch (b.kind) {
      case CondBehavior::Kind::Loop: {
        if (!s.primed) {
            uint32_t trip = b.tripCount;
            if (b.tripJitter > 0.0 && s.rng.chance(b.tripJitter)) {
                trip += s.rng.chance(0.5) ? 1 : (trip > 2 ? -1 : 0);
            }
            s.remaining = trip;
            s.primed = true;
        }
        // The latch executes once per iteration; taken while more
        // iterations remain.
        s.remaining -= 1;
        bool taken = s.remaining > 0;
        if (!taken)
            s.primed = false;
        return taken;
      }
      case CondBehavior::Kind::Biased:
        return s.rng.chance(b.biasTaken);
      case CondBehavior::Kind::Pattern: {
        bool taken = (b.patternBits >> s.patternPos) & 1;
        s.patternPos = (s.patternPos + 1) % b.patternLen;
        return taken;
      }
    }
    xbs_panic("bad cond behavior kind");
}

int32_t
Executor::evalIndirect(int32_t behavior_id)
{
    const auto &b = program_->indirectBehaviors()[behavior_id];
    auto &s = indirectStates_[behavior_id];
    if (s.lastTarget != kNoTarget && s.rng.chance(b.repeatProb))
        return s.lastTarget;
    std::size_t pick = s.rng.weighted(b.weights);
    s.lastTarget = b.targets[pick];
    return s.lastTarget;
}

int32_t
Executor::step()
{
    const auto &code = program_->code();
    const auto &si = code.inst(pc_);
    int32_t cur = pc_;

    if (!touched_[cur]) {
        touched_[cur] = true;
        ++uniqueTouched_;
    }

    lastTaken_ = false;
    switch (si.cls) {
      case InstClass::Seq:
        pc_ = cur + 1;
        break;
      case InstClass::CondBranch:
        lastTaken_ = evalCond(si.behaviorId);
        pc_ = lastTaken_ ? si.takenIdx : cur + 1;
        break;
      case InstClass::DirectJump:
        pc_ = si.takenIdx;
        break;
      case InstClass::DirectCall:
        callStack_.push_back(cur + 1);
        pc_ = si.takenIdx;
        break;
      case InstClass::IndirectJump:
        pc_ = evalIndirect(si.behaviorId);
        break;
      case InstClass::IndirectCall:
        callStack_.push_back(cur + 1);
        pc_ = evalIndirect(si.behaviorId);
        break;
      case InstClass::Return:
        if (callStack_.empty()) {
            pc_ = program_->entryIdx();  // restart the program
        } else {
            pc_ = callStack_.back();
            callStack_.pop_back();
        }
        break;
      default:
        xbs_panic("bad instruction class");
    }

    xbs_assert(pc_ >= 0 && (std::size_t)pc_ < code.size(),
               "pc %d escaped the program", pc_);
    return cur;
}

Trace
Executor::run(uint64_t num_instructions)
{
    std::vector<TraceRecord> records;
    records.reserve(num_instructions);
    for (uint64_t i = 0; i < num_instructions; ++i) {
        TraceRecord r;
        int32_t idx = step();
        r.staticIdx = idx;
        r.taken = lastTaken_ ? 1 : 0;
        records.push_back(r);
    }
    return Trace(program_->codePtr(), std::move(records),
                 program_->name());
}

Trace
makeTrace(std::shared_ptr<const Program> program,
          uint64_t num_instructions, uint64_t seed)
{
    Executor ex(std::move(program), seed);
    return ex.run(num_instructions);
}

} // namespace xbs
