#include "workload/program.hh"

#include "common/logging.hh"

namespace xbs
{

Program::Program(std::shared_ptr<const StaticCode> code,
                 std::vector<CondBehavior> cond_behaviors,
                 std::vector<IndirectBehavior> indirect_behaviors,
                 int32_t entry_idx,
                 std::vector<FunctionInfo> functions,
                 std::string name)
    : code_(std::move(code)),
      condBehaviors_(std::move(cond_behaviors)),
      indirectBehaviors_(std::move(indirect_behaviors)),
      entryIdx_(entry_idx),
      functions_(std::move(functions)),
      name_(std::move(name))
{
    validate();
}

void
Program::validate() const
{
    xbs_assert(code_ && code_->finalized(), "program needs code");
    xbs_assert(entryIdx_ >= 0 && (std::size_t)entryIdx_ < code_->size(),
               "entry index out of range");

    for (std::size_t i = 0; i < code_->size(); ++i) {
        const auto &si = code_->inst((int32_t)i);
        switch (si.cls) {
          case InstClass::CondBranch:
            xbs_assert(si.behaviorId >= 0 &&
                       (std::size_t)si.behaviorId <
                           condBehaviors_.size(),
                       "cond branch %zu lacks behavior", i);
            xbs_assert(si.takenIdx != kNoTarget,
                       "cond branch %zu lacks target", i);
            break;
          case InstClass::IndirectJump:
          case InstClass::IndirectCall:
            xbs_assert(si.behaviorId >= 0 &&
                       (std::size_t)si.behaviorId <
                           indirectBehaviors_.size(),
                       "indirect %zu lacks behavior", i);
            xbs_assert(!indirectBehaviors_[si.behaviorId]
                            .targets.empty(),
                       "indirect %zu has no targets", i);
            break;
          case InstClass::DirectJump:
          case InstClass::DirectCall:
            xbs_assert(si.takenIdx != kNoTarget,
                       "direct transfer %zu lacks target", i);
            break;
          default:
            break;
        }
    }
}

} // namespace xbs
