#include "workload/catalog.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "workload/builder.hh"
#include "workload/executor.hh"

namespace xbs
{

namespace
{

uint64_t
nameSeed(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= (unsigned char)c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

CatalogEntry
entry(const std::string &name, WorkloadProfile base,
      double size_scale, double loop_scale, double indirect_scale)
{
    base.name = name;
    base.seed = nameSeed(name);
    base.numFunctions =
        (unsigned)((double)base.numFunctions * size_scale);
    base.mainIterationBudget *= size_scale;
    base.shortTripMean *= loop_scale;
    base.wLoop *= loop_scale;
    base.indirectCallFraction *= indirect_scale;
    base.wSwitch *= indirect_scale;
    CatalogEntry e;
    e.name = name;
    e.suite = base.suite;
    e.profile = base;
    return e;
}

std::vector<CatalogEntry>
makeCatalog()
{
    std::vector<CatalogEntry> cat;

    // SPECint95-like: the 8 integer benchmarks the paper traced.
    const auto spec = specIntProfile();
    cat.push_back(entry("go",       spec, 1.5, 0.8, 0.6));
    cat.push_back(entry("m88ksim",  spec, 0.8, 1.3, 0.7));
    cat.push_back(entry("gcc",      spec, 2.4, 0.7, 1.2));
    cat.push_back(entry("compress", spec, 0.3, 1.8, 0.4));
    cat.push_back(entry("li",       spec, 0.6, 1.1, 1.5));
    cat.push_back(entry("ijpeg",    spec, 0.5, 1.7, 0.5));
    cat.push_back(entry("perl",     spec, 1.3, 0.9, 1.6));
    cat.push_back(entry("vortex",   spec, 1.9, 0.8, 1.0));

    // SYSmark32-for-Windows-95-like: large office applications.
    const auto sys = sysmarkProfile();
    cat.push_back(entry("word",     sys, 1.0, 1.0, 1.0));
    cat.push_back(entry("excel",    sys, 1.1, 1.0, 1.1));
    cat.push_back(entry("powerpnt", sys, 0.9, 0.9, 1.0));
    cat.push_back(entry("access",   sys, 1.2, 0.8, 1.2));
    cat.push_back(entry("corel",    sys, 0.8, 1.2, 0.9));
    cat.push_back(entry("photoshp", sys, 0.9, 1.5, 0.8));
    cat.push_back(entry("premiere", sys, 1.0, 1.3, 0.9));
    cat.push_back(entry("netscape", sys, 1.3, 0.8, 1.3));

    // Games-like: engine loops with heavy dispatch.
    const auto games = gamesProfile();
    cat.push_back(entry("quake2",   games, 1.0, 1.2, 1.0));
    cat.push_back(entry("unreal",   games, 1.2, 1.0, 1.2));
    cat.push_back(entry("halflife", games, 1.1, 1.0, 1.1));
    cat.push_back(entry("descent3", games, 0.9, 1.3, 0.9));
    cat.push_back(entry("falcon4",  games, 1.0, 0.9, 1.3));

    return cat;
}

} // anonymous namespace

const std::vector<CatalogEntry> &
workloadCatalog()
{
    static const std::vector<CatalogEntry> cat = makeCatalog();
    return cat;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "SPECint95", "SYSmark32", "Games",
    };
    return names;
}

std::vector<std::string>
catalogWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &e : workloadCatalog())
        names.push_back(e.name);
    return names;
}

const CatalogEntry *
findWorkloadPtr(const std::string &name)
{
    for (const auto &e : workloadCatalog()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

Expected<const CatalogEntry *>
findWorkloadEx(const std::string &name)
{
    if (const CatalogEntry *e = findWorkloadPtr(name))
        return e;
    return Status::error("unknown workload '" + name +
                         "' (see --list-workloads)");
}

const CatalogEntry &
findWorkload(const std::string &name)
{
    Expected<const CatalogEntry *> e = findWorkloadEx(name);
    if (!e.ok())
        xbs_fatal("%s", e.status().toString().c_str());
    return *e.value();
}

std::shared_ptr<const Program>
buildCatalogProgram(const CatalogEntry &e)
{
    return buildProgram(e.profile);
}

uint64_t
defaultTraceLength()
{
    if (const char *env = std::getenv("XBS_TRACE_LEN")) {
        uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    if (const char *fast = std::getenv("XBS_FAST")) {
        if (fast[0] == '1')
            return 300000;
    }
    return 2000000;
}

Trace
makeCatalogTrace(const std::string &name, uint64_t num_instructions)
{
    const auto &e = findWorkload(name);
    if (num_instructions == 0)
        num_instructions = defaultTraceLength();
    auto program = buildCatalogProgram(e);
    Executor ex(program, e.profile.seed);
    return ex.run(num_instructions);
}

} // namespace xbs
