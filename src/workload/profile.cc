#include "workload/profile.hh"

namespace xbs
{

WorkloadProfile
specIntProfile()
{
    WorkloadProfile p;
    p.suite = "SPECint95";
    p.numFunctions = 150;
    p.itemsPerFunctionMean = 10.0;
    p.wLoop = 1.1;
    p.wCall = 0.8;
    p.wSwitch = 0.10;
    p.monotonicFraction = 0.42;
    p.shortTripMean = 7.0;
    p.longLoopFraction = 0.18;
    p.indirectCallFraction = 0.08;
    p.indirectRepeatProb = 0.72;
    p.mainIterationBudget = 60000.0;
    p.budgetDecay = 0.70;
    return p;
}

WorkloadProfile
sysmarkProfile()
{
    WorkloadProfile p;
    p.suite = "SYSmark32";
    p.numFunctions = 620;
    p.itemsPerFunctionMean = 11.0;
    p.wLoop = 0.6;
    p.wCall = 1.5;
    p.wIfElse = 1.9;
    p.wSwitch = 0.14;
    p.monotonicFraction = 0.34;
    p.shortTripMean = 4.0;
    p.longLoopFraction = 0.08;
    p.indirectCallFraction = 0.14;
    p.indirectRepeatProb = 0.72;
    p.calleeZipfS = 0.8;
    p.mainIterationBudget = 260000.0;
    p.budgetDecay = 0.60;
    return p;
}

WorkloadProfile
gamesProfile()
{
    WorkloadProfile p;
    p.suite = "Games";
    p.numFunctions = 320;
    p.itemsPerFunctionMean = 10.0;
    p.wLoop = 0.9;
    p.wCall = 1.1;
    p.wSwitch = 0.20;
    p.switchFanoutMax = 8;
    p.monotonicFraction = 0.36;
    p.shortTripMean = 8.0;
    p.longLoopFraction = 0.14;
    p.indirectCallFraction = 0.12;
    p.indirectRepeatProb = 0.76;
    p.mainIterationBudget = 130000.0;
    p.budgetDecay = 0.70;
    return p;
}

} // namespace xbs
