#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace xbs
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    xbs_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    xbs_assert(cells.size() == headers_.size(),
               "row arity %zu != header arity %zu", cells.size(),
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        rule.append(widths[c], '-');
        rule.append(2, ' ');
    }
    while (!rule.empty() && rule.back() == ' ')
        rule.pop_back();
    out += rule + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
TextTable::csv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += '"';
            q += ch;
        }
        return q + "\"";
    };
    std::string out;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        out += (c ? "," : "") + quote(headers_[c]);
    out += "\n";
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out += (c ? "," : "") + quote(row[c]);
        out += "\n";
    }
    return out;
}

} // namespace xbs
