#include "common/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace xbs
{

Histogram::Histogram(uint32_t max_value)
    : bins_((std::size_t)max_value + 1, 0)
{
}

void
Histogram::add(uint32_t value, uint64_t count)
{
    if (value >= bins_.size())
        value = (uint32_t)bins_.size() - 1;
    bins_[value] += count;
    total_ += count;
    sum_ += (double)value * (double)count;
}

void
Histogram::merge(const Histogram &other)
{
    xbs_assert(bins_.size() == other.bins_.size(),
               "merging histograms over different domains");
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

uint64_t
Histogram::count(uint32_t value) const
{
    return value < bins_.size() ? bins_[value] : 0;
}

double
Histogram::mean() const
{
    return total_ ? sum_ / (double)total_ : 0.0;
}

double
Histogram::fraction(uint32_t value) const
{
    return total_ ? (double)count(value) / (double)total_ : 0.0;
}

uint32_t
Histogram::percentile(double p) const
{
    if (!total_)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    // cdf(v) = acc/total >= p with integer acc is exactly
    // acc >= ceil(p * total); truncation instead would return a bin
    // below the requested rank for any fractional target (and bin 0
    // for small totals before any mass is accumulated).
    uint64_t target = (uint64_t)std::ceil(p * (double)total_);
    if (target == 0)
        target = 1;
    uint64_t acc = 0;
    for (uint32_t v = 0; v < bins_.size(); ++v) {
        acc += bins_[v];
        if (acc >= target)
            return v;
    }
    return maxValue();
}

std::string
Histogram::render(const std::string &label, unsigned width) const
{
    std::string out = label + " (mean " +
        std::to_string(mean()).substr(0, 5) + ", n=" +
        std::to_string(total_) + ")\n";
    uint64_t peak = 0;
    for (auto b : bins_)
        peak = std::max(peak, b);
    if (!peak)
        return out + "  <empty>\n";
    char buf[160];
    for (uint32_t v = 0; v < bins_.size(); ++v) {
        if (!bins_[v])
            continue;
        auto bar = (unsigned)((double)bins_[v] / (double)peak * width);
        std::snprintf(buf, sizeof(buf), "  %3u | %-*s %6.2f%%\n", v,
                      (int)width,
                      std::string(bar, '#').c_str(),
                      100.0 * fraction(v));
        out += buf;
    }
    return out;
}

} // namespace xbs
