/**
 * @file
 * Signal-safe shutdown plumbing shared by the tools.
 *
 * Both xbsim (a simulation that should flush partial stats when the
 * batch supervisor times it out) and xbatch (a supervisor that must
 * drain its worker pool on Ctrl-C) follow the same pattern: a
 * sigaction handler that does nothing but set a volatile
 * sig_atomic_t flag, polled from the main loop. The handler is
 * installed *without* SA_RESTART so blocking syscalls return EINTR
 * and the poll loop notices the flag promptly.
 */

#ifndef XBS_COMMON_SIGNALS_HH
#define XBS_COMMON_SIGNALS_HH

#include <csignal>

namespace xbs
{

/**
 * Install SIGINT and SIGTERM handlers that set @p flag to the signal
 * number. @p flag must outlive the handlers (file-scope storage).
 * Calling again replaces the previous flag; there is at most one
 * stop flag per process.
 */
void installStopHandlers(volatile std::sig_atomic_t *flag);

/** Restore SIGINT/SIGTERM to their default dispositions. */
void resetStopHandlers();

/** The flag registered by installStopHandlers (nullptr if none). */
volatile std::sig_atomic_t *stopFlag();

} // namespace xbs

#endif // XBS_COMMON_SIGNALS_HH
