/**
 * @file
 * Crash-safe filesystem helpers for the batch layer.
 *
 * The xbatch journal must survive a SIGKILL of the supervisor at any
 * instruction, so every durable write here follows one of two
 * disciplines:
 *
 *  - whole files (manifest.json, report.json, cache entries): write
 *    to "<path>.tmp.<pid>", fsync the file, rename() over the
 *    target, fsync the directory. Readers see either the old or the
 *    new complete file, never a torn one.
 *
 *  - append-only logs (journal.jsonl): open O_APPEND (fsyncing the
 *    directory when the log is first created, so the file itself
 *    survives), write each record as one complete line, fsync after
 *    the line. A crash can leave at most one torn *final* line,
 *    which replay tolerates.
 *
 * Every fsync/rename/append site carries a crashPoint() hook (see
 * common/crashpoint.hh) so the chaos harness can kill the process at
 * each of them and prove the discipline actually holds.
 */

#ifndef XBS_COMMON_FS_HH
#define XBS_COMMON_FS_HH

#include <cstdint>
#include <string>

#include "common/status.hh"

namespace xbs
{

/** Map write-path errno values onto the typed Status codes retry
 *  policies key on: the transient exhaustion family (ENOSPC, EAGAIN,
 *  ENOMEM, ...) becomes Resource, ENOENT becomes NotFound. */
StatusCode errnoStatusCode(int err);

/** mkdir -p: create @p dir and any missing parents (0755). */
Status ensureDir(const std::string &dir);

/** Atomically replace @p path with @p content (tmp+fsync+rename,
 *  then fsync of the containing directory). */
Status writeFileAtomic(const std::string &path,
                       const std::string &content);

/** Slurp @p path (NotFound-coded when it does not exist). */
Expected<std::string> readFileToString(const std::string &path);

/** True if @p path exists (any file type). */
bool pathExists(const std::string &path);

/**
 * A durable append-only line log. append() writes the full line (a
 * trailing '\n' is added) with a single write() and by default
 * fsyncs before returning, so an acknowledged record survives power
 * loss.
 *
 * Failure semantics: a short write or I/O error mid-record would
 * leave a torn line that corrupts the *next* record too (the log
 * grows by concatenation). append() therefore rolls the file back
 * to the record boundary with ftruncate() before reporting the
 * typed error (Resource for ENOSPC-class failures, ShortWrite when
 * the kernel stopped early); if even the rollback fails the log is
 * marked torn and refuses further appends rather than silently
 * interleaving garbage.
 *
 * Group commit: append(line, false) writes without the fsync;
 * sync() makes everything written so far durable with one fsync.
 * Callers must not acknowledge batched records before sync()
 * returns ok.
 */
class AppendLog
{
  public:
    AppendLog() = default;
    ~AppendLog() { close(); }

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;

    /** Open (creating if needed) @p path for durable appends. A
     *  newly created log fsyncs its directory so the file's
     *  existence is as durable as its contents. */
    Status open(const std::string &path);

    /** Append one record; @p line must not contain '\n'. */
    Status append(const std::string &line, bool durable = true);

    /** fsync everything appended so far (group commit barrier). */
    Status sync();

    bool isOpen() const { return fd_ >= 0; }

    /** A failed append could not be rolled back; the tail may hold
     *  a torn record and the log refuses further appends. */
    bool torn() const { return torn_; }

    void close();

  private:
    int fd_ = -1;
    std::string path_;
    uint64_t size_ = 0;   ///< committed record-boundary offset
    bool dirty_ = false;  ///< unsynced appends outstanding
    bool torn_ = false;
};

} // namespace xbs

#endif // XBS_COMMON_FS_HH
