/**
 * @file
 * Crash-safe filesystem helpers for the batch layer.
 *
 * The xbatch journal must survive a SIGKILL of the supervisor at any
 * instruction, so every durable write here follows one of two
 * disciplines:
 *
 *  - whole files (manifest.json, report.json): write to
 *    "<path>.tmp.<pid>", fsync the file, rename() over the target,
 *    fsync the directory. Readers see either the old or the new
 *    complete file, never a torn one.
 *
 *  - append-only logs (journal.jsonl): open O_APPEND, write each
 *    record as one complete line, fsync after the line. A crash can
 *    leave at most one torn *final* line, which replay tolerates.
 */

#ifndef XBS_COMMON_FS_HH
#define XBS_COMMON_FS_HH

#include <cstdint>
#include <string>

#include "common/status.hh"

namespace xbs
{

/** mkdir -p: create @p dir and any missing parents (0755). */
Status ensureDir(const std::string &dir);

/** Atomically replace @p path with @p content (tmp+fsync+rename,
 *  then fsync of the containing directory). */
Status writeFileAtomic(const std::string &path,
                       const std::string &content);

/** Slurp @p path. */
Expected<std::string> readFileToString(const std::string &path);

/** True if @p path exists (any file type). */
bool pathExists(const std::string &path);

/**
 * A durable append-only line log. Each append() writes the full line
 * (a trailing '\n' is added) with a single write() and fsyncs before
 * returning, so an acknowledged record survives power loss.
 */
class AppendLog
{
  public:
    AppendLog() = default;
    ~AppendLog() { close(); }

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;

    /** Open (creating if needed) @p path for durable appends. */
    Status open(const std::string &path);

    /** Append one record; @p line must not contain '\n'. */
    Status append(const std::string &line);

    bool isOpen() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace xbs

#endif // XBS_COMMON_FS_HH
