#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace xbs
{

StatBase::StatBase(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    xbs_assert(group != nullptr, "stat '%s' needs a group",
               name_.c_str());
    group->registerStat(this);
}

void
ScalarStat::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << value_
       << "  # " << desc() << "\n";
}

void
AverageStat::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << mean()
       << "  # " << desc() << "\n";
}

void
FormulaStat::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << value()
       << "  # " << desc() << "\n";
}

DistributionStat::DistributionStat(StatGroup *group, std::string name,
                                   std::string desc, double min,
                                   double max, double bucket_size)
    : StatBase(group, std::move(name), std::move(desc)),
      min_(min), max_(max), bucketSize_(bucket_size)
{
    xbs_assert(max_ > min_ && bucketSize_ > 0.0,
               "bad distribution bounds");
    std::size_t n = (std::size_t)std::ceil((max_ - min_) / bucketSize_);
    buckets_.assign(std::max<std::size_t>(n, 1), 0);
}

void
DistributionStat::sample(double v, uint64_t count)
{
    samples_ += count;
    sum_ += v * (double)count;
    squares_ += v * v * (double)count;
    if (v < min_) {
        underflow_ += count;
    } else if (v >= max_) {
        overflow_ += count;
    } else {
        auto i = (std::size_t)((v - min_) / bucketSize_);
        if (i >= buckets_.size())
            i = buckets_.size() - 1;
        buckets_[i] += count;
    }
}

double
DistributionStat::mean() const
{
    return samples_ ? sum_ / (double)samples_ : 0.0;
}

double
DistributionStat::stddev() const
{
    if (samples_ < 2)
        return 0.0;
    double m = mean();
    double var = squares_ / (double)samples_ - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
DistributionStat::print(std::ostream &os,
                        const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + "::mean")
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << mean()
       << "  # " << desc() << "\n";
    os << std::left << std::setw(44) << (prefix + name() + "::stdev")
       << std::right << std::setw(16) << stddev() << "\n";
    os << std::left << std::setw(44) << (prefix + name() + "::samples")
       << std::right << std::setw(16) << samples_ << "\n";
    if (underflow_) {
        os << std::left << std::setw(44)
           << (prefix + name() + "::underflow")
           << std::right << std::setw(16) << underflow_ << "\n";
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        os << std::left << std::setw(44)
           << (prefix + name() + "::" + std::to_string((long long)
                   bucketLow(i)))
           << std::right << std::setw(16) << buckets_[i] << "\n";
    }
    if (overflow_) {
        os << std::left << std::setw(44)
           << (prefix + name() + "::overflow")
           << std::right << std::setw(16) << overflow_ << "\n";
    }
}

void
DistributionStat::writeJson(JsonWriter &json) const
{
    json.beginObject(name());
    json.field("mean", mean());
    json.field("stdev", stddev());
    json.field("samples", samples_);
    json.endObject();
}

void
DistributionStat::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = squares_ = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->registerChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->unregisterChild(this);
}

void
StatGroup::registerStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
StatGroup::registerChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::unregisterChild(StatGroup *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ + "."
                                      : prefix + name_ + ".";
    for (const auto *s : stats_)
        s->print(os, full);
    for (const auto *c : children_)
        c->dump(os, full);
}

void
StatGroup::dumpJson(JsonWriter &json, bool as_member) const
{
    if (as_member)
        json.beginObject(name_);
    else
        json.beginObject();
    for (const auto *s : stats_)
        s->writeJson(json);
    for (const auto *c : children_)
        c->dumpJson(json, /*as_member=*/true);
    json.endObject();
}

void
StatGroup::resetStats()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetStats();
}

const StatBase *
StatGroup::find(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : stats_) {
            if (s->name() == path)
                return s;
        }
        return nullptr;
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto *c : children_) {
        if (c->statName() == head)
            return c->find(rest);
    }
    return nullptr;
}

} // namespace xbs
