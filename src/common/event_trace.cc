#include "common/event_trace.hh"

#include <algorithm>

#include "common/json.hh"

namespace xbs
{

EventTraceSink::EventTraceSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
EventTraceSink::record(const ProbePoint &point, ProbeOp op,
                       uint64_t cycle, int64_t value,
                       const char *label)
{
    ++received_;
    trackId(point.track());

    Record r{&point, cycle, value, label, op};
    if (ring_.size() < capacity_) {
        ring_.push_back(r);
        head_ = ring_.size() % capacity_;
        ++count_;
    } else {
        ring_[head_] = r;
        head_ = (head_ + 1) % capacity_;
        if (count_ < capacity_)
            ++count_;
        else
            ++dropped_;
    }
}

std::size_t
EventTraceSink::size() const
{
    return count_;
}

unsigned
EventTraceSink::trackId(const std::string &track)
{
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i] == track)
            return (unsigned)i;
    }
    tracks_.push_back(track);
    return (unsigned)(tracks_.size() - 1);
}

std::vector<std::string>
EventTraceSink::trackNames() const
{
    return tracks_;
}

void
EventTraceSink::clear()
{
    ring_.clear();
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    received_ = 0;
    tracks_.clear();
}

void
EventTraceSink::writeChromeJson(std::ostream &os) const
{
    JsonWriter json(os, /*pretty=*/false);
    json.beginObject();
    json.beginArray("traceEvents");

    json.beginObject();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", (uint64_t)0);
    json.beginObject("args");
    json.field("name", "xbsim");
    json.endObject();
    json.endObject();

    for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
        json.beginObject();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", (uint64_t)0);
        json.field("tid", (uint64_t)tid);
        json.beginObject("args");
        json.field("name", tracks_[tid]);
        json.endObject();
        json.endObject();
    }

    // Per-track open-slice stacks so End records carry the matching
    // Begin's name (viewers match by nesting; names keep them tidy).
    std::vector<std::vector<const char *>> open(tracks_.size());

    const std::size_t start =
        count_ < capacity_ ? 0 : head_;  // oldest record
    for (std::size_t i = 0; i < count_; ++i) {
        const Record &r = ring_[(start + i) % capacity_];
        const std::string &track = r.point->track();
        uint64_t tid = 0;
        for (std::size_t t = 0; t < tracks_.size(); ++t) {
            if (tracks_[t] == track) {
                tid = t;
                break;
            }
        }

        json.beginObject();
        switch (r.op) {
          case ProbeOp::Instant:
            json.field("name", r.point->name());
            json.field("ph", "i");
            json.field("s", "t");
            break;
          case ProbeOp::Counter:
            json.field("name", r.point->name());
            json.field("ph", "C");
            break;
          case ProbeOp::Begin:
            json.field("name",
                       r.label ? r.label : r.point->name().c_str());
            json.field("ph", "B");
            open[tid].push_back(r.label);
            break;
          case ProbeOp::End: {
            const char *label = nullptr;
            if (!open[tid].empty()) {
                label = open[tid].back();
                open[tid].pop_back();
            }
            json.field("name",
                       label ? label : r.point->name().c_str());
            json.field("ph", "E");
            break;
          }
        }
        json.field("cat", track);
        json.field("ts", r.cycle);
        json.field("pid", (uint64_t)0);
        json.field("tid", tid);
        if (r.op == ProbeOp::Instant || r.op == ProbeOp::Counter) {
            json.beginObject("args");
            json.field("value", r.value);
            json.endObject();
        }
        json.endObject();
    }

    json.endArray();
    json.field("displayTimeUnit", "ms");
    json.field("droppedEvents", dropped_);
    json.endObject();
}

} // namespace xbs
