#include "common/args.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace xbs
{

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addString(const std::string &name, std::string *target,
                     const std::string &help)
{
    flags_.push_back(Flag{name, Kind::String, target, help, *target});
}

void
ArgParser::addUint(const std::string &name, uint64_t *target,
                   const std::string &help)
{
    flags_.push_back(Flag{name, Kind::Uint, target, help,
                          std::to_string(*target)});
}

void
ArgParser::addDouble(const std::string &name, double *target,
                     const std::string &help)
{
    flags_.push_back(Flag{name, Kind::Double, target, help,
                          std::to_string(*target)});
}

void
ArgParser::addBool(const std::string &name, bool *target,
                   const std::string &help)
{
    flags_.push_back(Flag{name, Kind::Bool, target, help,
                          *target ? "true" : "false"});
}

ArgParser::Flag *
ArgParser::find(const std::string &name)
{
    for (auto &f : flags_) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

void
ArgParser::assign(Flag &flag, const std::string &value)
{
    switch (flag.kind) {
      case Kind::String:
        *(std::string *)flag.target = value;
        break;
      case Kind::Uint: {
        char *end = nullptr;
        uint64_t v = std::strtoull(value.c_str(), &end, 0);
        if (!end || *end != '\0')
            xbs_fatal("--%s expects an integer, got '%s'",
                      flag.name.c_str(), value.c_str());
        *(uint64_t *)flag.target = v;
        break;
      }
      case Kind::Double: {
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (!end || *end != '\0')
            xbs_fatal("--%s expects a number, got '%s'",
                      flag.name.c_str(), value.c_str());
        *(double *)flag.target = v;
        break;
      }
      case Kind::Bool:
        if (value == "true" || value == "1") {
            *(bool *)flag.target = true;
        } else if (value == "false" || value == "0") {
            *(bool *)flag.target = false;
        } else {
            xbs_fatal("--%s expects true/false, got '%s'",
                      flag.name.c_str(), value.c_str());
        }
        break;
    }
}

bool
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }

        Flag *flag = find(name);
        if (!flag)
            xbs_fatal("unknown flag --%s (try --help)", name.c_str());

        if (!has_value) {
            if (flag->kind == Kind::Bool) {
                *(bool *)flag->target = true;
                continue;
            }
            if (i + 1 >= argc)
                xbs_fatal("--%s needs a value", name.c_str());
            value = argv[++i];
        }
        assign(*flag, value);
    }
    return true;
}

std::string
ArgParser::usage() const
{
    std::string out = program_ + " - " + description_ + "\n\nflags:\n";
    char buf[256];
    for (const auto &f : flags_) {
        std::snprintf(buf, sizeof(buf), "  --%-22s %s (default: %s)\n",
                      f.name.c_str(), f.help.c_str(),
                      f.defaultValue.c_str());
        out += buf;
    }
    out += "  --help                   show this message\n";
    return out;
}

} // namespace xbs
