/**
 * @file
 * Recoverable-error layer: Status and Expected<T>.
 *
 * Historically every I/O or configuration failure in xbcsim went
 * through xbs_fatal(), which makes the tools unusable as libraries
 * and turns a truncated trace file into a process exit deep inside
 * trace_io. Status carries a failure *description* instead: the
 * cause, plus optional context (file path, byte offset) attached as
 * the error propagates outward. Expected<T> is the value-or-Status
 * union returned by fallible constructors such as readTraceEx().
 *
 * The tools translate Status into process exit codes (see ExitCode):
 * usage/configuration errors keep the legacy code 1, data/I-O errors
 * exit 2, and audit violations (src/verify) exit 3.
 */

#ifndef XBS_COMMON_STATUS_HH
#define XBS_COMMON_STATUS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace xbs
{

/** Process exit codes shared by xbsim, xbtrace, and xbatch. */
enum ExitCode : int
{
    kExitOk = 0,
    kExitUsage = 1,  ///< bad flags / unknown names (legacy fatal())
    kExitData = 2,   ///< malformed or unreadable input data
    kExitAudit = 3,  ///< invariant/oracle violations (--audit)

    /// A sweep completed end to end but some jobs failed after
    /// retries: the report is valid and names the casualties
    /// (xbatch's "graceful degradation" outcome).
    kExitDegraded = 4,

    /// The process caught SIGINT/SIGTERM, flushed partial output
    /// (interval stats, audit report, journal) and stopped early.
    kExitInterrupted = 5,

    /// A benchmark comparison found at least one gated metric
    /// outside its tolerance (xbregress's failure outcome; the
    /// delta table names the offenders).
    kExitRegression = 6,
};

/**
 * Machine-readable failure class, orthogonal to the human-readable
 * cause string. Generic covers everything that predates the typing;
 * the specific codes exist where a *caller's policy* depends on what
 * went wrong: the scheduler retries Resource failures (disk full,
 * fork limits — the host may recover) but not Corrupt ones, and the
 * result cache treats Corrupt and NotFound entries as misses instead
 * of errors.
 */
enum class StatusCode
{
    Generic,    ///< untyped failure (default)
    Resource,   ///< ENOSPC/EDQUOT/EAGAIN/ENOMEM: transient host limit
    ShortWrite, ///< partial write the caller could not complete
    Corrupt,    ///< data present but failed integrity/parse checks
    NotFound,   ///< addressed object does not exist
};

const char *statusCodeName(StatusCode code);

/** Success-or-error result with file/offset/cause context. */
class [[nodiscard]] Status
{
  public:
    /** Default: success. */
    Status() = default;

    static Status ok() { return Status(); }

    static Status
    error(std::string cause)
    {
        Status st;
        st.failed_ = true;
        st.cause_ = std::move(cause);
        return st;
    }

    static Status
    error(StatusCode code, std::string cause)
    {
        Status st = error(std::move(cause));
        st.code_ = code;
        return st;
    }

    /// @{ Attach context while propagating (chainable; the first
    ///    caller to attach wins, so inner context is preserved).
    Status &
    withFile(const std::string &path)
    {
        if (failed_ && file_.empty())
            file_ = path;
        return *this;
    }

    Status &
    withOffset(uint64_t byte_offset)
    {
        if (failed_ && !offset_)
            offset_ = byte_offset;
        return *this;
    }
    /// @}

    /** Refine a propagating error's code (first refinement wins,
     *  like withFile; no-op on success or an already-typed error). */
    Status &
    withCode(StatusCode code)
    {
        if (failed_ && code_ == StatusCode::Generic)
            code_ = code;
        return *this;
    }

    bool isOk() const { return !failed_; }
    explicit operator bool() const { return !failed_; }

    StatusCode code() const { return code_; }

    /** Retrying the same operation later may succeed (the failure is
     *  a host condition, not a property of the data or request). */
    bool transient() const
    {
        return failed_ && code_ == StatusCode::Resource;
    }

    const std::string &cause() const { return cause_; }
    const std::string &file() const { return file_; }
    const std::optional<uint64_t> &offset() const { return offset_; }

    /** "cause [in 'file'] [at byte N]" for messages and logs. */
    std::string
    toString() const
    {
        if (!failed_)
            return "ok";
        std::string s = cause_;
        if (!file_.empty())
            s += " in '" + file_ + "'";
        if (offset_)
            s += " at byte " + std::to_string(*offset_);
        return s;
    }

  private:
    bool failed_ = false;
    StatusCode code_ = StatusCode::Generic;
    std::string cause_;
    std::string file_;
    std::optional<uint64_t> offset_;
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Generic:    return "generic";
      case StatusCode::Resource:   return "resource";
      case StatusCode::ShortWrite: return "short-write";
      case StatusCode::Corrupt:    return "corrupt";
      case StatusCode::NotFound:   return "not-found";
    }
    return "?";
}

/**
 * A T or the Status explaining why there is none. Construction from
 * a value yields success; construction from a Status (which must be
 * an error) yields failure.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Status status) : status_(std::move(status))
    {
        xbs_assert(!status_.isOk(),
                   "Expected built from an ok Status");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Status &status() const { return status_; }

    const T &
    value() const
    {
        xbs_assert(ok(), "Expected::value() on error: %s",
                   status_.toString().c_str());
        return *value_;
    }

    T &
    value()
    {
        xbs_assert(ok(), "Expected::value() on error: %s",
                   status_.toString().c_str());
        return *value_;
    }

    /** Move the value out (asserts ok). */
    T
    take()
    {
        xbs_assert(ok(), "Expected::take() on error: %s",
                   status_.toString().c_str());
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Status status_;
};

} // namespace xbs

#endif // XBS_COMMON_STATUS_HH
