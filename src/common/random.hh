/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** rather than std::mt19937 so that streams are
 * reproducible across standard-library implementations, and splitmix64
 * for seeding, per the reference implementations by Blackman & Vigna.
 */

#ifndef XBS_COMMON_RANDOM_HH
#define XBS_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace xbs
{

/** xoshiro256** generator with convenience draws. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit draw. */
    uint64_t next();

    /** @return a uniform integer in [0, bound), bound > 0. */
    uint64_t below(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return true with probability @p p. */
    bool chance(double p);

    /**
     * Draw an index from a discrete distribution given by
     * non-negative @p weights (need not be normalized).
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Geometric-like draw: the mean-@p mean positive integer capped at
     * @p cap. Used for block lengths and loop trip counts.
     */
    uint32_t boundedGeometric(double mean, uint32_t cap);

    /**
     * Zipf-distributed draw over [0, n): rank r with probability
     * proportional to 1/(r+1)^s. Table built lazily per (n, s) call
     * site via ZipfTable; this overload is for small n only.
     */
    std::size_t zipf(std::size_t n, double s);

  private:
    uint64_t s_[4];
};

/** Precomputed CDF for repeated Zipf draws over a fixed domain. */
class ZipfTable
{
  public:
    ZipfTable(std::size_t n, double s);

    /** Draw a rank in [0, n) using @p rng. */
    std::size_t sample(Rng &rng) const;

    std::size_t domain() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace xbs

#endif // XBS_COMMON_RANDOM_HH
