#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace xbs
{

namespace
{

bool quietFlag = false;

/** XBSIM_LOG override: -1 unset/unknown, 0 quiet, 1 normal,
 *  2 verbose. Read on every query: cheap, and tests (or long-lived
 *  embedders) may change the environment between runs. */
int
envLogMode()
{
    const char *e = std::getenv("XBSIM_LOG");
    if (!e || !*e)
        return -1;
    std::string v(e);
    if (v == "quiet")
        return 0;
    if (v == "normal")
        return 1;
    if (v == "verbose")
        return 2;
    static bool warned = false;
    if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "warn: XBSIM_LOG='%s' not recognized "
                     "(quiet|normal|verbose); ignoring\n", e);
    }
    return -1;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *file, int line,
            const char *fmt, va_list args)
{
    if (logQuiet() &&
        (level == LogLevel::Inform || level == LogLevel::Warn)) {
        return;
    }

    FILE *out = (level == LogLevel::Inform) ? stdout : stderr;
    if (level == LogLevel::Inform) {
        std::fprintf(out, "%s: ", levelName(level));
    } else {
        std::fprintf(out, "%s: %s:%d: ", levelName(level), file, line);
    }
    std::vfprintf(out, fmt, args);
    std::fprintf(out, "\n");
    std::fflush(out);
}

} // anonymous namespace

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    int env = envLogMode();
    if (env == 0)
        return true;
    if (env >= 1)
        return false;
    return quietFlag;
}

bool
logVerbose()
{
    return envLogMode() == 2;
}

void
logMessage(LogLevel level, const char *file, int line,
           const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, file, line, fmt, args);
    va_end(args);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Panic, file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Fatal, file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace xbs
