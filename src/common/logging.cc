#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace xbs
{

namespace
{

bool quietFlag = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *file, int line,
            const char *fmt, va_list args)
{
    if (quietFlag &&
        (level == LogLevel::Inform || level == LogLevel::Warn)) {
        return;
    }

    FILE *out = (level == LogLevel::Inform) ? stdout : stderr;
    if (level == LogLevel::Inform) {
        std::fprintf(out, "%s: ", levelName(level));
    } else {
        std::fprintf(out, "%s: %s:%d: ", levelName(level), file, line);
    }
    std::vfprintf(out, fmt, args);
    std::fprintf(out, "\n");
    std::fflush(out);
}

} // anonymous namespace

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

void
logMessage(LogLevel level, const char *file, int line,
           const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, file, line, fmt, args);
    va_end(args);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Panic, file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Fatal, file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace xbs
