#include "common/probe.hh"

namespace xbs
{

void
ProbeManager::registerPoint(ProbePoint *point)
{
    points_.push_back(point);
    point->mgr_ = this;
    point->sink_ = sink_;
}

void
ProbeManager::attach(ProbeSink *sink)
{
    sink_ = sink;
    for (auto *p : points_)
        p->sink_ = sink;
}

const ProbePoint *
ProbeManager::find(const std::string &track,
                   const std::string &name) const
{
    for (const auto *p : points_) {
        if (p->track() == track && p->name() == name)
            return p;
    }
    return nullptr;
}

ProbePoint::ProbePoint(ProbeManager *mgr, std::string track,
                       std::string name)
    : track_(std::move(track)), name_(std::move(name))
{
    if (mgr)
        mgr->registerPoint(this);
}

} // namespace xbs
