/**
 * @file
 * Error / status reporting helpers in the gem5 spirit.
 *
 * panic()  - an internal simulator invariant was violated (a bug in
 *            xbcsim itself); aborts so a core dump / debugger is useful.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with code 1.
 * warn()   - something is modeled approximately; simulation continues.
 * inform() - plain status output.
 */

#ifndef XBS_COMMON_LOGGING_HH
#define XBS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace xbs
{

/** Severity levels used by the logging backend. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Core logging entry point. Formats a printf-style message, prefixes it
 * with the severity and source location, and writes it to stderr
 * (stdout for Inform).
 *
 * @param level severity of the message
 * @param file  source file emitting the message (use __FILE__)
 * @param line  source line emitting the message (use __LINE__)
 * @param fmt   printf-style format string
 */
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** [[noreturn]] backends for panic/fatal so control flow is explicit. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Quiet mode suppresses inform()/warn() output; used by benches that
 * print machine-readable tables.
 *
 * The XBSIM_LOG environment variable (quiet | normal | verbose)
 * overrides whatever the program requests, so harnesses and CI can
 * control verbosity without plumbing flags: `XBSIM_LOG=quiet`
 * silences inform/warn even if the tool asked for normal output, and
 * `XBSIM_LOG=normal`/`verbose` forces output through a tool's
 * programmatic quiet request.
 */
void setLogQuiet(bool quiet);
bool logQuiet();

/** True when XBSIM_LOG=verbose (extra diagnostic output). */
bool logVerbose();

} // namespace xbs

#define xbs_panic(...) \
    ::xbs::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define xbs_fatal(...) \
    ::xbs::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define xbs_warn(...) \
    ::xbs::logMessage(::xbs::LogLevel::Warn, __FILE__, __LINE__, \
                      __VA_ARGS__)

#define xbs_inform(...) \
    ::xbs::logMessage(::xbs::LogLevel::Inform, __FILE__, __LINE__, \
                      __VA_ARGS__)

/**
 * Assertion that survives NDEBUG builds: these guard simulator
 * invariants whose violation would silently corrupt results.
 */
#define xbs_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::xbs::logMessage(::xbs::LogLevel::Panic, __FILE__,         \
                              __LINE__, "assertion '%s' failed",        \
                              #cond);                                   \
            ::xbs::panicImpl(__FILE__, __LINE__, __VA_ARGS__);          \
        }                                                               \
    } while (0)

#endif // XBS_COMMON_LOGGING_HH
