/**
 * @file
 * Minimal JSON helpers: a streaming writer that tracks nesting and
 * comma placement (stats export, bench results), and a small
 * recursive-descent parser (JsonValue) so tools and tests can read
 * back what the simulator emitted — interval JSONL, trace-event
 * files — without external dependencies.
 */

#ifndef XBS_COMMON_JSON_HH
#define XBS_COMMON_JSON_HH

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hh"

namespace xbs
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /// @{ Containers.
    void beginObject(const std::string &key = "");
    void endObject();
    void beginArray(const std::string &key = "");
    void endArray();
    /// @}

    /// @{ Scalar fields (inside an object: with key; inside an
    ///    array: pass an empty key).
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, uint64_t value);
    void field(const std::string &key, int64_t value);
    void field(const std::string &key, bool value);
    /// @}

    /** Like field(double) but at full %.17g precision, for values
     *  that must survive a write-parse round trip bit-exactly. */
    void fieldFull(const std::string &key, double value);

    /** All containers must be closed before destruction. */
    bool balanced() const { return stack_.empty(); }

  private:
    void prefix(const std::string &key);
    void indent();
    static std::string escape(const std::string &s);

    std::ostream &os_;
    bool pretty_;
    struct Level
    {
        bool isArray = false;
        bool hasItems = false;
    };
    std::vector<Level> stack_;
};

/**
 * A parsed JSON document node. Objects keep their members in input
 * order (handy for diffing emitted files).
 */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolValue = false;
    double numValue = 0.0;
    std::string strValue;
    std::vector<JsonValue> items;  ///< Array elements
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member by key, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /// @{ Checked-with-default accessors.
    double asNumber(double dflt = 0.0) const;
    uint64_t asUint(uint64_t dflt = 0) const;
    const std::string &asString(const std::string &dflt = "") const;
    /// @}
};

/**
 * Parse @p text as one JSON document.
 *
 * @param out   filled on success
 * @param error set to "offset N: reason" on failure (optional)
 * @return true on success
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error = nullptr);

/** Slurp @p path and parse it as one JSON document. */
Expected<JsonValue> readJsonFile(const std::string &path);

/** Outcome of a JSONL scan (see forEachJsonLine). */
struct JsonlScan
{
    std::size_t objects = 0;  ///< complete objects delivered
    std::size_t badLine = 0;  ///< 1-based first malformed line (0: none)
    std::string error;        ///< parse diagnostic for badLine

    bool clean() const { return badLine == 0; }
};

/**
 * Iterate a JSONL stream: parse each non-empty line as one JSON
 * object and hand it to @p fn (return false to stop early). The scan
 * stops at the first malformed or non-object line — a torn tail from
 * a crashed writer — keeping every complete object before it; the
 * damage is reported in the result rather than thrown, so callers
 * choose between tolerating (bench rollups) and failing (reports).
 */
JsonlScan forEachJsonLine(
    std::istream &is,
    const std::function<bool(const JsonValue &)> &fn);

/** Object member whose key *ends with* @p suffix, or nullptr; used
 *  to pick one stat out of a dotted-path delta map. */
const JsonValue *findBySuffix(const JsonValue &obj,
                              const std::string &suffix);

} // namespace xbs

#endif // XBS_COMMON_JSON_HH
