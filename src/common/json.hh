/**
 * @file
 * Minimal JSON emission helper: a streaming writer that tracks
 * nesting and comma placement, enough for stats export and bench
 * results (no parsing, no reflection).
 */

#ifndef XBS_COMMON_JSON_HH
#define XBS_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace xbs
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /// @{ Containers.
    void beginObject(const std::string &key = "");
    void endObject();
    void beginArray(const std::string &key = "");
    void endArray();
    /// @}

    /// @{ Scalar fields (inside an object: with key; inside an
    ///    array: pass an empty key).
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, uint64_t value);
    void field(const std::string &key, int64_t value);
    void field(const std::string &key, bool value);
    /// @}

    /** All containers must be closed before destruction. */
    bool balanced() const { return stack_.empty(); }

  private:
    void prefix(const std::string &key);
    void indent();
    static std::string escape(const std::string &s);

    std::ostream &os_;
    bool pretty_;
    struct Level
    {
        bool isArray = false;
        bool hasItems = false;
    };
    std::vector<Level> stack_;
};

} // namespace xbs

#endif // XBS_COMMON_JSON_HH
