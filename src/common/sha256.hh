/**
 * @file
 * SHA-256 (FIPS 180-4), dependency-free, for content addressing.
 *
 * The result cache keys jobs by (canonical RunSpec x workload
 * content x build provenance) and guards stored entries against
 * torn or bit-rotted files, so the hash must be collision-resistant
 * across millions of near-identical specs — a 64-bit mixing hash
 * (like the FNV the workload catalog uses for seeds) is not enough
 * for "serve this result instead of re-simulating".
 */

#ifndef XBS_COMMON_SHA256_HH
#define XBS_COMMON_SHA256_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace xbs
{

class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finish and return the 64-char lowercase hex digest. The
     *  object must be reset() before reuse. */
    std::string hexDigest();

  private:
    void compress(const uint8_t *block);

    uint32_t h_[8];
    uint64_t length_ = 0;      ///< total bytes absorbed
    uint8_t buf_[64];
    std::size_t bufLen_ = 0;
};

/** One-shot convenience. */
std::string sha256Hex(const std::string &data);

} // namespace xbs

#endif // XBS_COMMON_SHA256_HH
