/**
 * @file
 * Named probe points: the simulator-wide observability layer.
 *
 * A component owns ProbePoints (registered with the enclosing
 * frontend's ProbeManager) and fires them at interesting moments:
 * mode transitions, XB builds, bank conflicts, predictor outcomes.
 * When no sink is attached, firing is a single null-pointer test, so
 * instrumented hot paths cost nothing in ordinary runs. When a sink
 * (e.g. the ring-buffered EventTraceSink) is attached, every fire is
 * forwarded with its cycle timestamp for later timeline export.
 *
 * Timestamps come from the manager's *cycle source* (the owning
 * frontend's cycle counter), so components never need the current
 * cycle plumbed through their interfaces to be observable.
 *
 * Probe points carry a *track* (the component they belong to: "mode",
 * "xfu", "array", ...) and a *name* within that track; timeline
 * exporters map tracks to rows. Three firing shapes are supported:
 *  - instant events   (fire):      a point-in-time marker + value
 *  - counters         (count):     a sampled time series of a value
 *  - slices           (begin/end): a named duration, e.g. build mode
 */

#ifndef XBS_COMMON_PROBE_HH
#define XBS_COMMON_PROBE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace xbs
{

class ProbePoint;

/** How a single probe record is to be interpreted. */
enum class ProbeOp : uint8_t
{
    Instant,  ///< point event (value attached)
    Counter,  ///< counter sample (value is the counter's new value)
    Begin,    ///< slice opens (label names the slice)
    End,      ///< slice closes
};

/** Receiver of probe records; implemented by EventTraceSink. */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;

    /**
     * One probe record.
     *
     * @param point the firing probe point
     * @param op    record shape
     * @param cycle simulated-cycle timestamp
     * @param value instant/counter payload
     * @param label slice name for Begin records (a string literal
     *              owned by the caller; must outlive the sink's use)
     */
    virtual void record(const ProbePoint &point, ProbeOp op,
                        uint64_t cycle, int64_t value,
                        const char *label) = 0;
};

/**
 * Registry of a frontend's probe points. Owns no points; points
 * register themselves on construction (like stats in a StatGroup)
 * and receive the manager's current sink.
 */
class ProbeManager
{
  public:
    ProbeManager() = default;

    ProbeManager(const ProbeManager &) = delete;
    ProbeManager &operator=(const ProbeManager &) = delete;

    /** Called by ProbePoint's constructor. */
    void registerPoint(ProbePoint *point);

    /** Attach @p sink to every registered (and future) point;
     *  nullptr detaches. */
    void attach(ProbeSink *sink);

    ProbeSink *sink() const { return sink_; }

    /** Timestamp provider for all points of this manager (the owning
     *  frontend's cycle counter). */
    void setCycleSource(const ScalarStat *cycles) { cycles_ = cycles; }

    /** Current timestamp (0 before a cycle source is set). */
    uint64_t now() const { return cycles_ ? cycles_->value() : 0; }

    const std::vector<ProbePoint *> &points() const { return points_; }

    /** Find a registered point by (track, name), or nullptr. */
    const ProbePoint *find(const std::string &track,
                           const std::string &name) const;

  private:
    std::vector<ProbePoint *> points_;
    ProbeSink *sink_ = nullptr;
    const ScalarStat *cycles_ = nullptr;
};

/** One named probe point. */
class ProbePoint
{
  public:
    /**
     * @param mgr   registry; nullptr creates a permanently disabled
     *              point (components constructed without a frontend)
     * @param track timeline row this point belongs to ("mode", "xfu")
     * @param name  event name within the track
     */
    ProbePoint(ProbeManager *mgr, std::string track, std::string name);

    ProbePoint(const ProbePoint &) = delete;
    ProbePoint &operator=(const ProbePoint &) = delete;

    const std::string &track() const { return track_; }
    const std::string &name() const { return name_; }

    /** True when a sink is attached (records will be delivered). */
    bool enabled() const { return sink_ != nullptr; }

    /** Instant event. */
    void
    fire(int64_t value = 0)
    {
        if (sink_)
            sink_->record(*this, ProbeOp::Instant, mgr_->now(), value,
                          nullptr);
    }

    /** Counter sample. */
    void
    count(int64_t value)
    {
        if (sink_)
            sink_->record(*this, ProbeOp::Counter, mgr_->now(), value,
                          nullptr);
    }

    /** Open a slice named @p label (a string literal). */
    void
    begin(const char *label)
    {
        if (sink_)
            sink_->record(*this, ProbeOp::Begin, mgr_->now(), 0,
                          label);
    }

    /** Close the innermost open slice on this track. */
    void
    end()
    {
        if (sink_)
            sink_->record(*this, ProbeOp::End, mgr_->now(), 0,
                          nullptr);
    }

  private:
    friend class ProbeManager;

    ProbeSink *sink_ = nullptr;
    ProbeManager *mgr_ = nullptr;
    std::string track_;
    std::string name_;
};

} // namespace xbs

#endif // XBS_COMMON_PROBE_HH
