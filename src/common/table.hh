/**
 * @file
 * Minimal text-table formatter used by the bench harnesses to print
 * figure/table rows in a stable, diffable layout, plus CSV export.
 */

#ifndef XBS_COMMON_TABLE_HH
#define XBS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace xbs
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision digits. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double v, int precision = 2);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (header + rows). */
    std::string csv() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xbs

#endif // XBS_COMMON_TABLE_HH
