/**
 * @file
 * Ring-buffered probe sink that serializes to Chrome trace-event
 * JSON (the format Perfetto and chrome://tracing load natively).
 *
 * Records are kept in a fixed-capacity ring: a bounded-memory sink
 * that survives arbitrarily long runs by dropping the *oldest*
 * records (the tail of a run is usually what a regression hunt
 * needs). Each distinct probe track becomes one timeline row (a
 * "thread" in the trace-event model, named via thread_name metadata);
 * simulated cycles are exported as microsecond timestamps, so cycle
 * deltas read directly off the Perfetto ruler.
 */

#ifndef XBS_COMMON_EVENT_TRACE_HH
#define XBS_COMMON_EVENT_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/probe.hh"

namespace xbs
{

class EventTraceSink : public ProbeSink
{
  public:
    /** @param capacity ring capacity in records (oldest dropped). */
    explicit EventTraceSink(std::size_t capacity = 1u << 20);

    void record(const ProbePoint &point, ProbeOp op, uint64_t cycle,
                int64_t value, const char *label) override;

    /** Records currently held (<= capacity). */
    std::size_t size() const;

    /** Records dropped on ring overflow. */
    uint64_t dropped() const { return dropped_; }

    /** Total records ever received. */
    uint64_t received() const { return received_; }

    /** Distinct track names seen, in first-seen order. */
    std::vector<std::string> trackNames() const;

    /**
     * Write the buffered records as a Chrome trace-event JSON object:
     * {"traceEvents": [...], "displayTimeUnit": "ms"} with one
     * thread_name metadata record per track. Slices left open by the
     * producer are closed implicitly by the trace viewer.
     */
    void writeChromeJson(std::ostream &os) const;

    void clear();

  private:
    struct Record
    {
        const ProbePoint *point;
        uint64_t cycle;
        int64_t value;
        const char *label;  ///< string literal; Begin records only
        ProbeOp op;
    };

    /** Stable small id for @p track (also its exported tid). */
    unsigned trackId(const std::string &track);

    std::vector<Record> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;   ///< next write position
    std::size_t count_ = 0;  ///< valid records in the ring
    uint64_t dropped_ = 0;
    uint64_t received_ = 0;

    std::vector<std::string> tracks_;  ///< index = tid
};

} // namespace xbs

#endif // XBS_COMMON_EVENT_TRACE_HH
