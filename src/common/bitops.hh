/**
 * @file
 * Small bit-manipulation helpers used by cache indexing and predictors.
 */

#ifndef XBS_COMMON_BITOPS_HH
#define XBS_COMMON_BITOPS_HH

#include <cstdint>

#include "common/logging.hh"

namespace xbs
{

/** @return true iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** @return ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** @return a mask with the low @p n bits set. */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** @return bits [first, first+count) of @p v, right justified. */
constexpr uint64_t
bits(uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & mask(count);
}

/**
 * Fold the upper address bits of @p v into a set index for a structure
 * with @p num_sets (power of two) sets, skipping @p skip_low low bits.
 * XORs successive index-width chunks so hot code that shares high bits
 * still spreads over the sets.
 */
inline uint64_t
foldedIndex(uint64_t v, unsigned num_sets, unsigned skip_low = 0)
{
    xbs_assert(isPowerOf2(num_sets), "num_sets=%u", num_sets);
    const unsigned w = floorLog2(num_sets);
    if (w == 0)
        return 0;
    uint64_t x = v >> skip_low;
    uint64_t idx = 0;
    while (x) {
        idx ^= x & mask(w);
        x >>= w;
    }
    return idx;
}

/** @return the count of set bits in @p v. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
}

} // namespace xbs

#endif // XBS_COMMON_BITOPS_HH
