/**
 * @file
 * Interval statistics sampler: snapshots every ScalarStat under a
 * StatGroup each N simulated cycles and emits the *windowed deltas*
 * as one JSON object per line (JSONL). End-of-run aggregates hide
 * phase behavior; the per-interval stream recovers the time axis
 * (bandwidth, miss rate, mode switches, bank conflicts per window)
 * without any per-cycle logging cost.
 *
 * Guarantee used by the tests and tools: every counted event lands in
 * exactly one window (the final partial window included), so summing
 * any stat's deltas over all windows reproduces the end-of-run value
 * exactly.
 */

#ifndef XBS_COMMON_INTERVAL_STATS_HH
#define XBS_COMMON_INTERVAL_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace xbs
{

class JsonWriter;

class IntervalSampler
{
  public:
    /**
     * @param root     stat tree to sample (walked once, here; stats
     *                 registered later are not seen)
     * @param interval window length in cycles (>= 1)
     */
    IntervalSampler(const StatGroup &root, uint64_t interval);

    /** Set the JSONL destination (nullptr silences emission). */
    void setOutput(std::ostream *os) { os_ = os; }

    /**
     * Install a hook called while each window object is open, so a
     * driver can append extra members (e.g. the "host" throughput
     * sub-object from src/prof) without this class depending on it.
     * The hook must add complete members only — no begin/end
     * imbalance. Empty function detaches.
     */
    void setAnnotator(std::function<void(JsonWriter &)> fn)
    {
        annotator_ = std::move(fn);
    }

    /**
     * Advance simulated time to @p cycle; emits one window per
     * boundary crossed. Call once per cycle (multi-cycle jumps are
     * handled; the whole jump's deltas land in the first window).
     */
    void
    tick(uint64_t cycle)
    {
        if (cycle >= nextBoundary_)
            crossBoundaries(cycle);
    }

    /** Emit the final (usually partial) window ending at @p cycle. */
    void finish(uint64_t cycle);

    uint64_t windowsEmitted() const { return windows_; }
    uint64_t interval() const { return interval_; }

  private:
    void crossBoundaries(uint64_t cycle);
    void emitWindow(uint64_t start_cycle, uint64_t end_cycle);
    void walk(const StatGroup &group, const std::string &prefix);
    std::size_t findPath(const std::string &suffix) const;
    uint64_t delta(std::size_t idx) const;

    uint64_t interval_;
    uint64_t nextBoundary_;
    uint64_t windowStart_ = 0;
    uint64_t windows_ = 0;
    bool finished_ = false;
    std::ostream *os_ = nullptr;
    std::function<void(JsonWriter &)> annotator_;

    std::vector<std::string> paths_;
    std::vector<const ScalarStat *> stats_;
    std::vector<uint64_t> prev_;

    /// @{ Indices of the headline-metric ingredients (npos if the
    ///    tree has no FrontendMetrics group).
    std::size_t renamedIdx_;
    std::size_t deliveryCyclesIdx_;
    std::size_t deliveryUopsIdx_;
    std::size_t buildUopsIdx_;
    /// @}
};

} // namespace xbs

#endif // XBS_COMMON_INTERVAL_STATS_HH
