/**
 * @file
 * Interval statistics sampler: snapshots every ScalarStat under a
 * StatGroup each N simulated cycles and emits the *windowed deltas*
 * as one JSON object per line (JSONL). End-of-run aggregates hide
 * phase behavior; the per-interval stream recovers the time axis
 * (bandwidth, miss rate, mode switches, bank conflicts per window)
 * without any per-cycle logging cost.
 *
 * Guarantee used by the tests and tools: every counted event lands in
 * exactly one window (the final partial window included), so summing
 * any stat's deltas over all windows reproduces the end-of-run value
 * exactly.
 */

#ifndef XBS_COMMON_INTERVAL_STATS_HH
#define XBS_COMMON_INTERVAL_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace xbs
{

class JsonWriter;

class IntervalSampler
{
  public:
    static constexpr std::size_t npos = (std::size_t)-1;

    /** What one closed window looked like, for window hooks. */
    struct WindowInfo
    {
        uint64_t index = 0;       ///< 0-based window number
        uint64_t startCycle = 0;
        uint64_t endCycle = 0;
        double bandwidth = 0.0;   ///< renamed uops / delivery cycles
        double missRate = 0.0;    ///< build uops / total uops
    };

    /**
     * @param root     stat tree to sample (walked once, here; stats
     *                 registered later are not seen)
     * @param interval window length in cycles (>= 1)
     */
    IntervalSampler(const StatGroup &root, uint64_t interval);

    /** Set the JSONL destination (nullptr silences emission). */
    void setOutput(std::ostream *os) { os_ = os; }

    /**
     * Install a per-window hook, fired for every window — with or
     * without a JSONL output stream. When the stream is on, the hook
     * runs while the window object is open, right after the headline
     * fields, so it may append members (e.g. a "phase" id); @p json
     * is then non-null. The hook runs before the deltas are
     * committed, so pendingDelta() inside it reads this window's
     * deltas. Empty function detaches.
     */
    void
    setWindowHook(std::function<void(const WindowInfo &,
                                     JsonWriter *)> fn)
    {
        hook_ = std::move(fn);
    }

    /**
     * Install a hook called while each window object is open, so a
     * driver can append extra members (e.g. the "host" throughput
     * sub-object from src/prof) without this class depending on it.
     * The hook must add complete members only — no begin/end
     * imbalance. Empty function detaches.
     */
    void setAnnotator(std::function<void(JsonWriter &)> fn)
    {
        annotator_ = std::move(fn);
    }

    /**
     * Advance simulated time to @p cycle; emits one window per
     * boundary crossed. Call once per cycle (multi-cycle jumps are
     * handled; the whole jump's deltas land in the first window).
     */
    void
    tick(uint64_t cycle)
    {
        if (cycle >= nextBoundary_)
            crossBoundaries(cycle);
    }

    /** Emit the final (usually partial) window ending at @p cycle. */
    void finish(uint64_t cycle);

    uint64_t windowsEmitted() const { return windows_; }
    uint64_t interval() const { return interval_; }

    /// @{ Introspection for window hooks (src/obs/stats): the sampled
    ///    stat paths, suffix lookup into them, and the current
    ///    window's not-yet-committed delta of one stat.
    const std::vector<std::string> &paths() const { return paths_; }

    std::size_t
    findPathIndex(const std::string &suffix) const
    {
        return findPath(suffix);
    }

    uint64_t pendingDelta(std::size_t idx) const { return delta(idx); }
    /// @}

  private:
    void crossBoundaries(uint64_t cycle);
    void emitWindow(uint64_t start_cycle, uint64_t end_cycle);
    void walk(const StatGroup &group, const std::string &prefix);
    std::size_t findPath(const std::string &suffix) const;
    uint64_t delta(std::size_t idx) const;

    uint64_t interval_;
    uint64_t nextBoundary_;
    uint64_t windowStart_ = 0;
    uint64_t windows_ = 0;
    bool finished_ = false;
    std::ostream *os_ = nullptr;
    std::function<void(JsonWriter &)> annotator_;
    std::function<void(const WindowInfo &, JsonWriter *)> hook_;

    std::vector<std::string> paths_;
    std::vector<const ScalarStat *> stats_;
    std::vector<uint64_t> prev_;

    /// @{ Indices of the headline-metric ingredients (npos if the
    ///    tree has no FrontendMetrics group).
    std::size_t renamedIdx_;
    std::size_t deliveryCyclesIdx_;
    std::size_t deliveryUopsIdx_;
    std::size_t buildUopsIdx_;
    /// @}
};

} // namespace xbs

#endif // XBS_COMMON_INTERVAL_STATS_HH
