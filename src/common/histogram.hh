/**
 * @file
 * Integer-domain histogram used for block-length distributions
 * (Figure 1) and other small-domain counts. Unlike DistributionStat
 * this is a free-standing value type with exact integer buckets.
 */

#ifndef XBS_COMMON_HISTOGRAM_HH
#define XBS_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xbs
{

class Histogram
{
  public:
    /** Histogram over the integer domain [0, max_value]. */
    explicit Histogram(uint32_t max_value);

    /** Record @p count occurrences of @p value (clamped to domain). */
    void add(uint32_t value, uint64_t count = 1);

    /** Merge another histogram over the same domain. */
    void merge(const Histogram &other);

    uint64_t total() const { return total_; }
    uint64_t count(uint32_t value) const;
    uint32_t maxValue() const { return (uint32_t)bins_.size() - 1; }

    /** Mean of all recorded values. */
    double mean() const;

    /** Fraction of samples equal to @p value. */
    double fraction(uint32_t value) const;

    /** Smallest value v such that cdf(v) >= p, p in [0, 1]. */
    uint32_t percentile(double p) const;

    /// @{ Conventional summary percentiles (rollup reports).
    uint32_t p50() const { return percentile(0.50); }
    uint32_t p95() const { return percentile(0.95); }
    uint32_t p99() const { return percentile(0.99); }
    /// @}

    /** Render as an ASCII bar chart, one row per non-empty bin. */
    std::string render(const std::string &label,
                       unsigned width = 50) const;

    /// @{ Checkpoint access: raw accumulator state (sum_ is restored
    ///    by bit pattern, not recomputed, so mean() stays identical).
    const std::vector<uint64_t> &bins() const { return bins_; }
    double sumValue() const { return sum_; }

    void
    restore(const std::vector<uint64_t> &bins, uint64_t total,
            double sum)
    {
        if (bins.size() == bins_.size())
            bins_ = bins;
        total_ = total;
        sum_ = sum;
    }
    /// @}

  private:
    std::vector<uint64_t> bins_;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace xbs

#endif // XBS_COMMON_HISTOGRAM_HH
