/**
 * @file
 * A small statistics package in the spirit of gem5's Stats:
 * named scalar counters, averages, and distributions that register
 * themselves with a StatGroup and can be dumped as text.
 */

#ifndef XBS_COMMON_STATS_HH
#define XBS_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

namespace xbs
{

class StatGroup;

/** Base class for all statistics; handles naming and registration. */
class StatBase
{
  public:
    StatBase(StatGroup *group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print "name value # desc" lines to @p os. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /** Emit the statistic as a JSON member. */
    virtual void writeJson(JsonWriter &json) const = 0;

    /** Reset the statistic to its initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Simple monotonically updated counter. */
class ScalarStat : public StatBase
{
  public:
    using StatBase::StatBase;

    ScalarStat &operator++() { ++value_; return *this; }
    ScalarStat &operator+=(uint64_t v) { value_ += v; return *this; }

    ScalarStat &
    operator--()
    {
        // Counters are unsigned: wrapping below zero would silently
        // corrupt every derived metric, so treat it as a simulator
        // bug rather than producing a ~2^64 value.
        xbs_assert(value_ > 0, "stat '%s' decremented below zero",
                   name().c_str());
        --value_;
        return *this;
    }

    void set(uint64_t v) { value_ = v; }

    uint64_t value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void writeJson(JsonWriter &json) const override
    {
        json.field(name(), value_);
    }
    void reset() override { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Running mean of sampled values. */
class AverageStat : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / (double)count_ : 0.0; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Checkpoint restore: reload the exact accumulator state (the
     *  bit pattern of sum_ matters for %.17g JSON identity). */
    void restore(double sum, uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

    void print(std::ostream &os, const std::string &prefix) const override;
    void writeJson(JsonWriter &json) const override
    {
        json.field(name(), mean());
    }
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/**
 * Derived statistic: a named formula over other stats, evaluated at
 * dump time. This is how code-only accessors like bandwidth() or
 * missRate() become visible in dump()/dumpJson() output (and
 * findable through StatGroup::find) without being stored anywhere.
 */
class FormulaStat : public StatBase
{
  public:
    using Fn = std::function<double()>;

    FormulaStat(StatGroup *group, std::string name, std::string desc,
                Fn fn)
        : StatBase(group, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {
    }

    double value() const { return fn_ ? fn_() : 0.0; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void writeJson(JsonWriter &json) const override
    {
        json.field(name(), value());
    }

    /** Formulas carry no state; resetting the ingredients suffices. */
    void reset() override {}

  private:
    Fn fn_;
};

/**
 * Bucketed distribution over [min, max] with fixed-width buckets;
 * values outside the range land in underflow/overflow.
 */
class DistributionStat : public StatBase
{
  public:
    DistributionStat(StatGroup *group, std::string name,
                     std::string desc, double min, double max,
                     double bucket_size);

    void sample(double v, uint64_t count = 1);

    uint64_t samples() const { return samples_; }
    double mean() const;
    double stddev() const;
    uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketLow(std::size_t i) const
    {
        return min_ + (double)i * bucketSize_;
    }

    /// @{ Checkpoint access: the full accumulator state, so a
    ///    restored distribution is bit-identical to the live one.
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    double sum() const { return sum_; }
    double squares() const { return squares_; }

    void
    restore(const std::vector<uint64_t> &buckets, uint64_t underflow,
            uint64_t overflow, uint64_t samples, double sum,
            double squares)
    {
        if (buckets.size() == buckets_.size())
            buckets_ = buckets;
        underflow_ = underflow;
        overflow_ = overflow;
        samples_ = samples;
        sum_ = sum;
        squares_ = squares;
    }
    /// @}

    void print(std::ostream &os, const std::string &prefix) const override;
    void writeJson(JsonWriter &json) const override;
    void reset() override;

  private:
    double min_;
    double max_;
    double bucketSize_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t samples_ = 0;
    double sum_ = 0.0;
    double squares_ = 0.0;
};

/**
 * A named collection of statistics. Groups may nest; a group prints
 * all of its stats (and its children's) with dotted-name prefixes.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Called by StatBase's constructor. */
    void registerStat(StatBase *stat);
    void registerChild(StatGroup *child);
    void unregisterChild(StatGroup *child);

    /** Dump all statistics under this group to @p os. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Dump all statistics under this group as a JSON object. */
    void dumpJson(JsonWriter &json, bool as_member = false) const;

    /** Reset all statistics under this group. */
    void resetStats();

    /** Find a stat by dotted path relative to this group, or null. */
    const StatBase *find(const std::string &path) const;

    const std::string &statName() const { return name_; }

    /// @{ Tree iteration (used by the interval-stats sampler).
    const std::vector<StatBase *> &stats() const { return stats_; }
    const std::vector<StatGroup *> &children() const
    {
        return children_;
    }
    /// @}

  private:
    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace xbs

#endif // XBS_COMMON_STATS_HH
