/**
 * @file
 * Tiny command-line argument parser for the tools: registered flags
 * of the forms --name=value, --name value, and boolean --name, plus
 * automatic --help generation. fatal() on unknown flags so typos
 * never silently run the wrong experiment.
 */

#ifndef XBS_COMMON_ARGS_HH
#define XBS_COMMON_ARGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xbs
{

class ArgParser
{
  public:
    ArgParser(std::string program, std::string description);

    /// @{ Flag registration (call before parse()).
    void addString(const std::string &name, std::string *target,
                   const std::string &help);
    void addUint(const std::string &name, uint64_t *target,
                 const std::string &help);
    void addDouble(const std::string &name, double *target,
                   const std::string &help);
    void addBool(const std::string &name, bool *target,
                 const std::string &help);
    /// @}

    /**
     * Parse argv. Recognizes --help (prints usage, returns false).
     * fatal() on unknown or malformed flags.
     *
     * @return true to continue, false when help was requested
     */
    bool parse(int argc, char **argv);

    /** Usage text (also printed by --help). */
    std::string usage() const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    enum class Kind { String, Uint, Double, Bool };

    struct Flag
    {
        std::string name;
        Kind kind;
        void *target;
        std::string help;
        std::string defaultValue;
    };

    Flag *find(const std::string &name);
    void assign(Flag &flag, const std::string &value);

    std::string program_;
    std::string description_;
    std::vector<Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace xbs

#endif // XBS_COMMON_ARGS_HH
