#include "common/signals.hh"

#include <signal.h>

namespace xbs
{

namespace
{

volatile std::sig_atomic_t *g_stop_flag = nullptr;

extern "C" void
stopHandler(int signum)
{
    // Async-signal-safe: a single volatile sig_atomic_t store.
    if (g_stop_flag)
        *g_stop_flag = signum;
}

} // anonymous namespace

void
installStopHandlers(volatile std::sig_atomic_t *flag)
{
    g_stop_flag = flag;
    struct sigaction sa;
    sa.sa_handler = stopHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: let blocking calls EINTR out
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
resetStopHandlers()
{
    struct sigaction sa;
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    g_stop_flag = nullptr;
}

volatile std::sig_atomic_t *
stopFlag()
{
    return g_stop_flag;
}

} // namespace xbs
