#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xbs
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    xbs_assert(bound > 0, "zero bound");
    // Lemire-style rejection to avoid modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    xbs_assert(lo <= hi, "bad range [%ld, %ld]", (long)lo, (long)hi);
    return lo + (int64_t)below((uint64_t)(hi - lo) + 1);
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    xbs_assert(total > 0.0, "weighted() needs positive total weight");
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return weights.size() - 1;
}

uint32_t
Rng::boundedGeometric(double mean, uint32_t cap)
{
    xbs_assert(mean >= 1.0 && cap >= 1, "mean=%f cap=%u", mean, cap);
    // Geometric on {1, 2, ...} with the requested mean, then capped.
    const double p = 1.0 / mean;
    double u = uniform();
    // Inverse CDF of the geometric distribution.
    uint32_t k = (uint32_t)std::floor(std::log1p(-u) /
                                      std::log1p(-p)) + 1;
    return std::min(k, cap);
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    ZipfTable table(n, s);
    return table.sample(*this);
}

ZipfTable::ZipfTable(std::size_t n, double s)
{
    xbs_assert(n > 0, "empty Zipf domain");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        acc += 1.0 / std::pow((double)(r + 1), s);
        cdf_[r] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
ZipfTable::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return (std::size_t)(it - cdf_.begin());
}

} // namespace xbs
