/**
 * @file
 * Crash-point injection: deterministic process death at named
 * durability-critical instructions, for the chaos harness.
 *
 * Every fsync/rename/append site in the fs/journal/cache code calls
 * crashPoint("site.name"). When the environment selects that site —
 * XBATCH_CRASH_AT=<site>:<n> — the n-th execution of the site kills
 * the process on the spot with _exit(), modeling a SIGKILL (or power
 * loss) at exactly that instruction: no destructors, no flushes, no
 * atexit. The durability claims of the batch layer ("an acknowledged
 * record survives a crash at any instant") are tested by iterating
 * every registered site (see verify/crash_matrix) instead of only the
 * few crash timings a hand-written test happens to produce.
 *
 * Disabled (the normal case) the hook is one predicted branch on a
 * cached bool, so it stays compiled into release binaries and the
 * harness tests the real production code path.
 */

#ifndef XBS_COMMON_CRASHPOINT_HH
#define XBS_COMMON_CRASHPOINT_HH

#include <string>
#include <vector>

namespace xbs
{

/** Exit code a crash-point death uses (distinguishable from every
 *  real exit code and from shell signal deaths). */
constexpr int kCrashPointExit = 86;

/**
 * Die here if XBATCH_CRASH_AT selects @p site. @p site must be a
 * string literal from the registry below (asserted by the harness,
 * not at runtime — the hot path stays a single branch).
 */
void crashPoint(const char *site);

/** True when XBATCH_CRASH_AT is set (tests skip timing-sensitive
 *  assertions under injection). */
bool crashPointArmed();

/**
 * Every site name compiled into the binary, in a stable order. The
 * crash matrix iterates this list; a listed site that no code
 * reaches fails the matrix (the victim exits cleanly instead of
 * dying), so the registry cannot rot.
 */
const std::vector<std::string> &crashPointSites();

/** Reset the per-site hit counters and re-read the environment
 *  (tests only; a forked victim inherits fresh state anyway). */
void crashPointReset();

} // namespace xbs

#endif // XBS_COMMON_CRASHPOINT_HH
