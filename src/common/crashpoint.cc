#include "common/crashpoint.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

namespace xbs
{

namespace
{

struct CrashConfig
{
    bool armed = false;
    std::string site;
    unsigned long target = 1;  ///< die on the target-th hit
    unsigned long hits = 0;
};

CrashConfig &
config()
{
    static CrashConfig cfg;
    return cfg;
}

void
loadFromEnv()
{
    CrashConfig &cfg = config();
    cfg = CrashConfig{};
    const char *env = std::getenv("XBATCH_CRASH_AT");
    if (!env || !*env)
        return;
    const char *colon = std::strrchr(env, ':');
    if (colon) {
        cfg.site.assign(env, (std::size_t)(colon - env));
        cfg.target = std::strtoul(colon + 1, nullptr, 10);
        if (cfg.target == 0)
            cfg.target = 1;
    } else {
        cfg.site = env;
        cfg.target = 1;
    }
    cfg.armed = !cfg.site.empty();
}

bool
initialized()
{
    static const bool once = (loadFromEnv(), true);
    return once;
}

} // anonymous namespace

void
crashPoint(const char *site)
{
    if (!initialized())
        return;
    CrashConfig &cfg = config();
    if (!cfg.armed || cfg.site != site)
        return;
    if (++cfg.hits < cfg.target)
        return;
    // Model SIGKILL / power loss at this exact instruction: no
    // destructors, no stream flushes, no atexit handlers. The one
    // message goes straight to fd 2 so the harness can attribute the
    // death even when stdio buffers die with the process.
    char msg[128];
    int n = std::snprintf(msg, sizeof(msg),
                          "crashpoint: dying at %s (hit %lu)\n", site,
                          cfg.hits);
    if (n > 0)
        (void)!::write(2, msg, (std::size_t)n);
    ::_exit(kCrashPointExit);
}

bool
crashPointArmed()
{
    (void)initialized();
    return config().armed;
}

const std::vector<std::string> &
crashPointSites()
{
    // Keep in sync with the crashPoint() calls in common/fs.cc and
    // batch/result_cache.cc; the crash matrix fails if a listed site
    // never fires, so drift is caught by CI, not review.
    static const std::vector<std::string> sites = {
        "atomic.tmp_written",   // tmp file written, not yet fsync'd
        "atomic.tmp_synced",    // tmp fsync'd, not yet renamed
        "atomic.renamed",       // renamed, directory not yet fsync'd
        "atomic.dir_synced",    // fully durable
        "append.opened",        // log created, dir entry not durable
        "append.pre_write",     // record not yet written
        "append.written",       // record written, not yet fsync'd
        "append.synced",        // record durable
        "cache.pre_store",      // result computed, entry not written
        "cache.stored",         // entry durable
    };
    return sites;
}

void
crashPointReset()
{
    (void)initialized();
    loadFromEnv();
}

} // namespace xbs
