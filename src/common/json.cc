#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/fs.hh"
#include "common/logging.hh"

namespace xbs
{

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        xbs_warn("JsonWriter destroyed with %zu open containers",
                 stack_.size());
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!stack_.empty()) {
        if (stack_.back().hasItems)
            os_ << ',';
        stack_.back().hasItems = true;
        indent();
        if (!stack_.back().isArray) {
            xbs_assert(!key.empty(), "object member needs a key");
            os_ << '"' << escape(key) << "\":" << (pretty_ ? " " : "");
        } else {
            xbs_assert(key.empty(), "array item must not have a key");
        }
    }
}

void
JsonWriter::beginObject(const std::string &key)
{
    prefix(key);
    os_ << '{';
    stack_.push_back(Level{false, false});
}

void
JsonWriter::endObject()
{
    xbs_assert(!stack_.empty() && !stack_.back().isArray,
               "endObject without beginObject");
    bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        indent();
    os_ << '}';
    if (stack_.empty() && pretty_)
        os_ << '\n';
}

void
JsonWriter::beginArray(const std::string &key)
{
    prefix(key);
    os_ << '[';
    stack_.push_back(Level{true, false});
}

void
JsonWriter::endArray()
{
    xbs_assert(!stack_.empty() && stack_.back().isArray,
               "endArray without beginArray");
    bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        indent();
    os_ << ']';
}

void
JsonWriter::field(const std::string &key, const std::string &value)
{
    prefix(key);
    os_ << '"' << escape(value) << '"';
}

void
JsonWriter::field(const std::string &key, const char *value)
{
    field(key, std::string(value));
}

void
JsonWriter::field(const std::string &key, double value)
{
    prefix(key);
    if (std::isfinite(value)) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        os_ << buf;
    } else {
        os_ << "null";
    }
}

void
JsonWriter::fieldFull(const std::string &key, double value)
{
    prefix(key);
    if (std::isfinite(value)) {
        // %.17g round-trips every finite double through strtod
        // bit-exactly; used where a value will be read back and must
        // compare equal (journal metrics, cache entries), not just
        // displayed.
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        os_ << buf;
    } else {
        os_ << "null";
    }
}

void
JsonWriter::field(const std::string &key, uint64_t value)
{
    prefix(key);
    os_ << value;
}

void
JsonWriter::field(const std::string &key, int64_t value)
{
    prefix(key);
    os_ << value;
}

void
JsonWriter::field(const std::string &key, bool value)
{
    prefix(key);
    os_ << (value ? "true" : "false");
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::asNumber(double dflt) const
{
    return isNumber() ? numValue : dflt;
}

uint64_t
JsonValue::asUint(uint64_t dflt) const
{
    return isNumber() && numValue >= 0.0 ? (uint64_t)numValue : dflt;
}

const std::string &
JsonValue::asString(const std::string &dflt) const
{
    return isString() ? strValue : dflt;
}

namespace
{

/** Recursive-descent JSON parser over an in-memory string. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (error_ && error_->empty()) {
            *error_ = "offset " + std::to_string(pos_) + ": " + why;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("bad literal");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out->type = JsonValue::Type::String;
            return parseString(&out->strValue);
          case 't':
            out->type = JsonValue::Type::Bool;
            out->boolValue = true;
            return literal("true", 4);
          case 'f':
            out->type = JsonValue::Type::Bool;
            out->boolValue = false;
            return literal("false", 5);
          case 'n':
            out->type = JsonValue::Type::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue *out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected a value");
        char *end = nullptr;
        std::string num = text_.substr(start, pos_ - start);
        double v = std::strtod(num.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        out->type = JsonValue::Type::Number;
        out->numValue = v;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        ++pos_;  // opening quote
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                switch (text_[pos_]) {
                  case '"':  *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/':  *out += '/'; break;
                  case 'b':  *out += '\b'; break;
                  case 'f':  *out += '\f'; break;
                  case 'n':  *out += '\n'; break;
                  case 'r':  *out += '\r'; break;
                  case 't':  *out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 >= text_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = text_[pos_ + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= (unsigned)(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= (unsigned)(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= (unsigned)(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    pos_ += 4;
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are not produced by our writer).
                    if (cp < 0x80) {
                        *out += (char)cp;
                    } else if (cp < 0x800) {
                        *out += (char)(0xc0 | (cp >> 6));
                        *out += (char)(0x80 | (cp & 0x3f));
                    } else {
                        *out += (char)(0xe0 | (cp >> 12));
                        *out += (char)(0x80 | ((cp >> 6) & 0x3f));
                        *out += (char)(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                *out += c;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_;  // closing quote
        return true;
    }

    bool
    parseArray(JsonValue *out)
    {
        out->type = JsonValue::Type::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipWs();
            if (!parseValue(&item))
                return false;
            out->items.push_back(std::move(item));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        out->type = JsonValue::Type::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->members.emplace_back(std::move(key),
                                      std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    if (error)
        error->clear();
    JsonParser parser(text, error);
    *out = JsonValue{};
    return parser.parse(out);
}

Expected<JsonValue>
readJsonFile(const std::string &path)
{
    Expected<std::string> text = readFileToString(path);
    if (!text.ok())
        return text.status();
    JsonValue doc;
    std::string err;
    if (!parseJson(text.value(), &doc, &err))
        return Status::error("malformed JSON: " + err).withFile(path);
    return doc;
}

JsonlScan
forEachJsonLine(std::istream &is,
                const std::function<bool(const JsonValue &)> &fn)
{
    JsonlScan scan;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue doc;
        std::string err;
        if (!parseJson(line, &doc, &err) || !doc.isObject()) {
            scan.badLine = lineno;
            scan.error = err.empty() ? "not a JSON object" : err;
            break;
        }
        ++scan.objects;
        if (!fn(doc))
            break;
    }
    return scan;
}

const JsonValue *
findBySuffix(const JsonValue &obj, const std::string &suffix)
{
    for (const auto &[key, value] : obj.members) {
        if (key.size() >= suffix.size() &&
            key.compare(key.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
            return &value;
        }
    }
    return nullptr;
}

} // namespace xbs
