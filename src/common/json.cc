#include "common/json.hh"

#include <cmath>

#include "common/logging.hh"

namespace xbs
{

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        xbs_warn("JsonWriter destroyed with %zu open containers",
                 stack_.size());
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!stack_.empty()) {
        if (stack_.back().hasItems)
            os_ << ',';
        stack_.back().hasItems = true;
        indent();
        if (!stack_.back().isArray) {
            xbs_assert(!key.empty(), "object member needs a key");
            os_ << '"' << escape(key) << "\":" << (pretty_ ? " " : "");
        } else {
            xbs_assert(key.empty(), "array item must not have a key");
        }
    }
}

void
JsonWriter::beginObject(const std::string &key)
{
    prefix(key);
    os_ << '{';
    stack_.push_back(Level{false, false});
}

void
JsonWriter::endObject()
{
    xbs_assert(!stack_.empty() && !stack_.back().isArray,
               "endObject without beginObject");
    bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        indent();
    os_ << '}';
    if (stack_.empty() && pretty_)
        os_ << '\n';
}

void
JsonWriter::beginArray(const std::string &key)
{
    prefix(key);
    os_ << '[';
    stack_.push_back(Level{true, false});
}

void
JsonWriter::endArray()
{
    xbs_assert(!stack_.empty() && stack_.back().isArray,
               "endArray without beginArray");
    bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        indent();
    os_ << ']';
}

void
JsonWriter::field(const std::string &key, const std::string &value)
{
    prefix(key);
    os_ << '"' << escape(value) << '"';
}

void
JsonWriter::field(const std::string &key, const char *value)
{
    field(key, std::string(value));
}

void
JsonWriter::field(const std::string &key, double value)
{
    prefix(key);
    if (std::isfinite(value)) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        os_ << buf;
    } else {
        os_ << "null";
    }
}

void
JsonWriter::field(const std::string &key, uint64_t value)
{
    prefix(key);
    os_ << value;
}

void
JsonWriter::field(const std::string &key, int64_t value)
{
    prefix(key);
    os_ << value;
}

void
JsonWriter::field(const std::string &key, bool value)
{
    prefix(key);
    os_ << (value ? "true" : "false");
}

} // namespace xbs
