#include "common/interval_stats.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace xbs
{

IntervalSampler::IntervalSampler(const StatGroup &root,
                                 uint64_t interval)
    : interval_(interval ? interval : 1), nextBoundary_(interval_)
{
    walk(root, "");
    prev_.assign(stats_.size(), 0);
    for (std::size_t i = 0; i < stats_.size(); ++i)
        prev_[i] = stats_[i]->value();

    renamedIdx_ = findPath("frontend.renamedUops");
    deliveryCyclesIdx_ = findPath("frontend.deliveryCycles");
    deliveryUopsIdx_ = findPath("frontend.deliveryUops");
    buildUopsIdx_ = findPath("frontend.buildUops");
}

void
IntervalSampler::walk(const StatGroup &group, const std::string &prefix)
{
    std::string full = prefix + group.statName() + ".";
    for (const StatBase *s : group.stats()) {
        if (const auto *scalar = dynamic_cast<const ScalarStat *>(s)) {
            paths_.push_back(full + s->name());
            stats_.push_back(scalar);
        }
    }
    for (const StatGroup *c : group.children())
        walk(*c, full);
}

std::size_t
IntervalSampler::findPath(const std::string &suffix) const
{
    for (std::size_t i = 0; i < paths_.size(); ++i) {
        const std::string &p = paths_[i];
        if (p.size() >= suffix.size() &&
            p.compare(p.size() - suffix.size(), suffix.size(),
                      suffix) == 0) {
            return i;
        }
    }
    return (std::size_t)-1;
}

uint64_t
IntervalSampler::delta(std::size_t idx) const
{
    if (idx == (std::size_t)-1)
        return 0;
    return stats_[idx]->value() - prev_[idx];
}

void
IntervalSampler::emitWindow(uint64_t start_cycle, uint64_t end_cycle)
{
    if (os_ || hook_) {
        // Headline window metrics from the not-yet-committed deltas.
        uint64_t d_renamed = delta(renamedIdx_);
        uint64_t d_delivery_cycles = delta(deliveryCyclesIdx_);
        uint64_t d_delivery_uops = delta(deliveryUopsIdx_);
        uint64_t d_build_uops = delta(buildUopsIdx_);
        uint64_t d_total_uops = d_delivery_uops + d_build_uops;

        WindowInfo info;
        info.index = windows_;
        info.startCycle = start_cycle;
        info.endCycle = end_cycle;
        info.bandwidth =
            d_delivery_cycles
                ? (double)d_renamed / (double)d_delivery_cycles
                : 0.0;
        info.missRate =
            d_total_uops
                ? (double)d_build_uops / (double)d_total_uops
                : 0.0;

        if (os_) {
            JsonWriter json(*os_, /*pretty=*/false);
            json.beginObject();
            json.field("interval", windows_);
            json.field("startCycle", start_cycle);
            json.field("endCycle", end_cycle);
            json.field("cycles", end_cycle - start_cycle);
            json.field("bandwidth", info.bandwidth);
            json.field("missRate", info.missRate);
            if (hook_)
                hook_(info, &json);
            if (annotator_)
                annotator_(json);
            json.beginObject("deltas");
            for (std::size_t i = 0; i < stats_.size(); ++i) {
                uint64_t d = stats_[i]->value() - prev_[i];
                if (d)
                    json.field(paths_[i], d);
            }
            json.endObject();
            json.endObject();
            *os_ << '\n';
        } else {
            hook_(info, nullptr);
        }
    }

    for (std::size_t i = 0; i < stats_.size(); ++i)
        prev_[i] = stats_[i]->value();
    ++windows_;
    windowStart_ = end_cycle;
}

void
IntervalSampler::crossBoundaries(uint64_t cycle)
{
    while (cycle >= nextBoundary_) {
        emitWindow(windowStart_, nextBoundary_);
        nextBoundary_ += interval_;
    }
}

void
IntervalSampler::finish(uint64_t cycle)
{
    if (finished_)
        return;
    finished_ = true;
    tick(cycle);
    // Residual partial window (also emitted when empty so the stream
    // always covers [0, cycle] completely). A run ending exactly on a
    // boundary can still have uncommitted deltas — counters bumped
    // after the boundary tick — which must not be dropped, or the
    // sum-of-windows == aggregate guarantee breaks.
    bool pending = false;
    for (std::size_t i = 0; i < stats_.size() && !pending; ++i)
        pending = stats_[i]->value() != prev_[i];
    if (cycle > windowStart_ || windows_ == 0 || pending)
        emitWindow(windowStart_, cycle);
    if (os_)
        os_->flush();
}

} // namespace xbs
