#include "common/fs.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/crashpoint.hh"

namespace xbs
{

namespace
{

std::string
errnoString()
{
    return std::strerror(errno);
}

std::string
dirnameOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

Status
fsyncPath(const std::string &path, int flags)
{
    int fd = ::open(path.c_str(), flags);
    if (fd < 0) {
        return Status::error("cannot open for fsync: " +
                             errnoString()).withFile(path);
    }
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        return Status::error("fsync failed: " + errnoString())
            .withFile(path);
    }
    return Status::ok();
}

} // anonymous namespace

StatusCode
errnoStatusCode(int err)
{
    switch (err) {
      case ENOSPC:
      case EDQUOT:
      case EAGAIN:
      case ENOMEM:
      case EMFILE:
      case ENFILE:
        return StatusCode::Resource;
      case ENOENT:
        return StatusCode::NotFound;
      default:
        return StatusCode::Generic;
    }
}

Status
ensureDir(const std::string &dir)
{
    if (dir.empty())
        return Status::error("empty directory path");
    std::string partial;
    std::istringstream ss(dir);
    std::string component;
    if (dir[0] == '/')
        partial = "/";
    while (std::getline(ss, component, '/')) {
        if (component.empty())
            continue;
        if (!partial.empty() && partial.back() != '/')
            partial += '/';
        partial += component;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
            return Status::error(errnoStatusCode(errno),
                                 "mkdir failed: " + errnoString())
                .withFile(partial);
        }
    }
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return Status::error("not a directory").withFile(dir);
    return Status::ok();
}

Status
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string((long)::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return Status::error(errnoStatusCode(errno),
                             "cannot create temp file: " +
                             errnoString()).withFile(tmp);
    }
    std::size_t off = 0;
    while (off < content.size()) {
        ssize_t n = ::write(fd, content.data() + off,
                            content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            Status st = Status::error(errnoStatusCode(errno),
                                      "write failed: " +
                                      errnoString())
                            .withFile(tmp).withOffset(off);
            ::close(fd);
            ::unlink(tmp.c_str());
            return st;
        }
        off += (std::size_t)n;
    }
    crashPoint("atomic.tmp_written");
    if (::fsync(fd) != 0) {
        Status st = Status::error(errnoStatusCode(errno),
                                  "fsync failed: " + errnoString())
                        .withFile(tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
    }
    ::close(fd);
    crashPoint("atomic.tmp_synced");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        Status st = Status::error(errnoStatusCode(errno),
                                  "rename failed: " + errnoString())
                        .withFile(path);
        ::unlink(tmp.c_str());
        return st;
    }
    crashPoint("atomic.renamed");
    // Make the rename itself durable: without the directory fsync a
    // crash here can forget the whole entry despite the fsync'd
    // contents (covered by the crash matrix at atomic.renamed).
    Status st = fsyncPath(dirnameOf(path), O_RDONLY | O_DIRECTORY);
    crashPoint("atomic.dir_synced");
    return st;
}

Expected<std::string>
readFileToString(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(errnoStatusCode(errno),
                             "cannot open: " + errnoString())
            .withFile(path);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    if (is.bad()) {
        return Status::error("read failed: " + errnoString())
            .withFile(path);
    }
    return ss.str();
}

bool
pathExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

Status
AppendLog::open(const std::string &path)
{
    close();
    const bool existed = pathExists(path);
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd_ < 0) {
        return Status::error(errnoStatusCode(errno),
                             "cannot open append log: " +
                             errnoString()).withFile(path);
    }
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        Status bad = Status::error("cannot stat append log: " +
                                   errnoString()).withFile(path);
        close();
        return bad;
    }
    size_ = (uint64_t)st.st_size;
    path_ = path;
    torn_ = false;
    dirty_ = false;
    if (!existed) {
        // A log created just now only durably *exists* once its
        // directory entry is synced; otherwise a crash could drop
        // the whole file no matter how many records were fsync'd.
        if (Status dir = fsyncPath(dirnameOf(path),
                                   O_RDONLY | O_DIRECTORY);
            !dir.isOk()) {
            close();
            return dir;
        }
    }
    crashPoint("append.opened");
    return Status::ok();
}

Status
AppendLog::append(const std::string &line, bool durable)
{
    if (fd_ < 0)
        return Status::error("append log is not open");
    if (torn_) {
        return Status::error(StatusCode::Corrupt,
                             "append log has a torn tail (earlier "
                             "failed append could not be rolled "
                             "back)").withFile(path_);
    }
    if (line.find('\n') != std::string::npos) {
        return Status::error("journal record contains a newline")
            .withFile(path_);
    }
    std::string rec = line;
    rec += '\n';
    crashPoint("append.pre_write");
    // One write() per record: O_APPEND makes the offset update atomic
    // and a whole-record write keeps torn lines confined to crashes
    // *during* the write, which replay tolerates at the tail.
    std::size_t off = 0;
    Status failure = Status::ok();
    while (off < rec.size()) {
        ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failure = Status::error(errnoStatusCode(errno),
                                    "journal write failed: " +
                                    errnoString())
                          .withFile(path_).withOffset(size_ + off);
            break;
        }
        if (n == 0) {
            failure = Status::error(StatusCode::ShortWrite,
                                    "journal write made no progress")
                          .withFile(path_).withOffset(size_ + off);
            break;
        }
        off += (std::size_t)n;
    }
    if (!failure.isOk()) {
        // Roll the file back to the last record boundary so the
        // partial record cannot corrupt the next append. If the
        // rollback itself fails the log is unusable: mark it torn
        // and refuse, never silently drop bytes.
        if (off > 0 && ::ftruncate(fd_, (off_t)size_) != 0)
            torn_ = true;
        return failure;
    }
    crashPoint("append.written");
    if (durable) {
        if (::fsync(fd_) != 0) {
            // The record is written but not durable; the caller must
            // not acknowledge it. The file is still well-formed, so
            // later appends may proceed.
            size_ += rec.size();
            dirty_ = true;
            return Status::error(errnoStatusCode(errno),
                                 "journal fsync failed: " +
                                 errnoString()).withFile(path_);
        }
        dirty_ = false;
        crashPoint("append.synced");
    } else {
        dirty_ = true;
    }
    size_ += rec.size();
    return Status::ok();
}

Status
AppendLog::sync()
{
    if (fd_ < 0)
        return Status::error("append log is not open");
    if (!dirty_)
        return Status::ok();
    if (::fsync(fd_) != 0) {
        return Status::error(errnoStatusCode(errno),
                             "journal fsync failed: " +
                             errnoString()).withFile(path_);
    }
    dirty_ = false;
    crashPoint("append.synced");
    return Status::ok();
}

void
AppendLog::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
    size_ = 0;
    dirty_ = false;
    torn_ = false;
}

} // namespace xbs
