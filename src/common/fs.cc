#include "common/fs.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace xbs
{

namespace
{

std::string
errnoString()
{
    return std::strerror(errno);
}

std::string
dirnameOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

Status
fsyncPath(const std::string &path, int flags)
{
    int fd = ::open(path.c_str(), flags);
    if (fd < 0) {
        return Status::error("cannot open for fsync: " +
                             errnoString()).withFile(path);
    }
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        return Status::error("fsync failed: " + errnoString())
            .withFile(path);
    }
    return Status::ok();
}

} // anonymous namespace

Status
ensureDir(const std::string &dir)
{
    if (dir.empty())
        return Status::error("empty directory path");
    std::string partial;
    std::istringstream ss(dir);
    std::string component;
    if (dir[0] == '/')
        partial = "/";
    while (std::getline(ss, component, '/')) {
        if (component.empty())
            continue;
        if (!partial.empty() && partial.back() != '/')
            partial += '/';
        partial += component;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
            return Status::error("mkdir failed: " + errnoString())
                .withFile(partial);
        }
    }
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return Status::error("not a directory").withFile(dir);
    return Status::ok();
}

Status
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string((long)::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return Status::error("cannot create temp file: " +
                             errnoString()).withFile(tmp);
    }
    std::size_t off = 0;
    while (off < content.size()) {
        ssize_t n = ::write(fd, content.data() + off,
                            content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            Status st = Status::error("write failed: " +
                                      errnoString())
                            .withFile(tmp).withOffset(off);
            ::close(fd);
            ::unlink(tmp.c_str());
            return st;
        }
        off += (std::size_t)n;
    }
    if (::fsync(fd) != 0) {
        Status st = Status::error("fsync failed: " + errnoString())
                        .withFile(tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        Status st = Status::error("rename failed: " + errnoString())
                        .withFile(path);
        ::unlink(tmp.c_str());
        return st;
    }
    // Make the rename itself durable.
    return fsyncPath(dirnameOf(path), O_RDONLY | O_DIRECTORY);
}

Expected<std::string>
readFileToString(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error("cannot open: " + errnoString())
            .withFile(path);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    if (is.bad()) {
        return Status::error("read failed: " + errnoString())
            .withFile(path);
    }
    return ss.str();
}

bool
pathExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

Status
AppendLog::open(const std::string &path)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd_ < 0) {
        return Status::error("cannot open append log: " +
                             errnoString()).withFile(path);
    }
    path_ = path;
    return Status::ok();
}

Status
AppendLog::append(const std::string &line)
{
    if (fd_ < 0)
        return Status::error("append log is not open");
    if (line.find('\n') != std::string::npos) {
        return Status::error("journal record contains a newline")
            .withFile(path_);
    }
    std::string rec = line;
    rec += '\n';
    // One write() per record: O_APPEND makes the offset update atomic
    // and a whole-record write keeps torn lines confined to crashes
    // *during* the write, which replay tolerates at the tail.
    std::size_t off = 0;
    while (off < rec.size()) {
        ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error("journal write failed: " +
                                 errnoString()).withFile(path_);
        }
        off += (std::size_t)n;
    }
    if (::fsync(fd_) != 0) {
        return Status::error("journal fsync failed: " +
                             errnoString()).withFile(path_);
    }
    return Status::ok();
}

void
AppendLog::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

} // namespace xbs
