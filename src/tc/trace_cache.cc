#include "tc/trace_cache.hh"

#include <algorithm>

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

TraceCache::TraceCache(unsigned capacity_uops, unsigned ways,
                       const TraceLimits &limits, StatGroup *parent,
                       ProbeManager *probes)
    : StatGroup("tc", parent), ways_(ways), limits_(limits),
      insertProbe_(probes, "array", "insert"),
      evictProbe_(probes, "array", "evict"),
      occupancyProbe_(probes, "array", "residentUops")
{
    xbs_assert(ways >= 1, "TC needs at least one way");
    unsigned lines = capacity_uops / limits.maxUops;
    xbs_assert(lines >= ways, "TC capacity below one set");
    numSets_ = lines / ways;
    // Round down to a power of two for simple indexing.
    numSets_ = 1u << floorLog2(numSets_);
    lines_.resize((std::size_t)numSets_ * ways_);
}

std::size_t
TraceCache::setOf(uint64_t ip) const
{
    return (std::size_t)foldedIndex(ip, numSets_, 1);
}

std::vector<const TraceLine *>
TraceCache::lookupAll(uint64_t ip)
{
    ++lookups;
    std::vector<const TraceLine *> out;
    std::size_t base = setOf(ip) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        TraceLine &l = lines_[base + w];
        if (l.valid && l.startIp == ip)
            out.push_back(&l);
    }
    if (!out.empty())
        ++hits;
    return out;
}

void
TraceCache::touch(const TraceLine *line)
{
    // lookupAll hands out pointers into lines_, so the const_cast
    // only strips the constness we added for the caller's benefit.
    const_cast<TraceLine *>(line)->lru = ++clock_;
}

const TraceLine *
TraceCache::lookup(uint64_t ip)
{
    ++lookups;
    std::size_t base = setOf(ip) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        TraceLine &l = lines_[base + w];
        if (l.valid && l.startIp == ip) {
            l.lru = ++clock_;
            ++hits;
            return &l;
        }
    }
    return nullptr;
}

void
TraceCache::accountInsert(const TraceLine &line, const StaticCode &code)
{
    for (const auto &e : line.insts) {
        const StaticInst &si = code.inst(e.staticIdx);
        for (unsigned s = 0; s < si.numUops; ++s)
            ++residency_[makeUopId(si.ip, s)];
    }
    filledUops_ += line.numUops;
}

void
TraceCache::accountEvict(const TraceLine &line, const StaticCode &code)
{
    for (const auto &e : line.insts) {
        const StaticInst &si = code.inst(e.staticIdx);
        for (unsigned s = 0; s < si.numUops; ++s) {
            auto it = residency_.find(makeUopId(si.ip, s));
            xbs_assert(it != residency_.end() && it->second > 0,
                       "residency underflow");
            if (--it->second == 0)
                residency_.erase(it);
        }
    }
    filledUops_ -= line.numUops;
}

void
TraceCache::insert(const TraceLine &line, const StaticCode &code,
                   bool path_associative)
{
    xbs_assert(line.valid && !line.insts.empty(),
               "inserting an empty trace");
    xbs_assert(line.numUops <= limits_.maxUops, "trace too long");

    std::size_t base = setOf(line.startIp) * ways_;

    // Without path associativity a same-IP resident trace is
    // replaced; with it, only an identical-path trace is refreshed
    // and differing paths coexist in other ways ([Jaco97]).
    TraceLine *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        TraceLine &l = lines_[base + w];
        if (!l.valid || l.startIp != line.startIp)
            continue;
        if (path_associative) {
            bool same_path =
                l.insts.size() == line.insts.size();
            for (std::size_t i = 0; same_path && i < l.insts.size();
                 ++i) {
                same_path = l.insts[i].staticIdx ==
                                line.insts[i].staticIdx &&
                            l.insts[i].taken == line.insts[i].taken;
            }
            if (!same_path)
                continue;
        }
        victim = &l;
        ++replacements;
        break;
    }
    if (!victim) {
        for (unsigned w = 0; w < ways_; ++w) {
            TraceLine &l = lines_[base + w];
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (!victim || l.lru < victim->lru)
                victim = &l;
        }
        if (victim->valid) {
            ++evictions;
            evictProbe_.fire((int64_t)victim->numUops);
        }
    }

    if (victim->valid)
        accountEvict(*victim, code);

    *victim = line;
    victim->lru = ++clock_;
    accountInsert(*victim, code);
    ++inserts;
    insertProbe_.fire((int64_t)line.numUops);
    occupancyProbe_.count((int64_t)filledUops_);
}

double
TraceCache::redundancy() const
{
    uint64_t instances = 0;
    for (const auto &[id, count] : residency_)
        instances += count;
    return residency_.empty()
               ? 1.0
               : (double)instances / (double)residency_.size();
}

double
TraceCache::fillFactor() const
{
    uint64_t reserved = 0;
    for (const auto &l : lines_) {
        if (l.valid)
            reserved += limits_.maxUops;
    }
    return reserved ? (double)filledUops_ / (double)reserved : 0.0;
}

void
TraceCache::auditStorage(
    const StaticCode &code,
    const std::function<void(AuditViolation)> &sink) const
{
    auto report = [&](AuditViolation::Kind kind, std::string what) {
        AuditViolation v;
        v.kind = kind;
        v.where = "tc.array";
        v.what = std::move(what);
        sink(std::move(v));
    };

    uint64_t filled = 0;
    std::unordered_map<UopId, uint32_t> counted;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const TraceLine &l = lines_[i];
        if (!l.valid)
            continue;
        std::string where = "line " + std::to_string(i) + ": ";
        if (l.insts.empty()) {
            report(AuditViolation::Kind::Structural,
                   where + "valid line with no instructions");
            continue;
        }
        unsigned uops = 0;
        unsigned conds = 0;
        bool indexed_ok = true;
        for (const auto &e : l.insts) {
            if (e.staticIdx < 0 ||
                (std::size_t)e.staticIdx >= code.size()) {
                report(AuditViolation::Kind::Structural,
                       where + "out-of-range static index");
                indexed_ok = false;
                break;
            }
            const StaticInst &si = code.inst(e.staticIdx);
            uops += si.numUops;
            conds += si.cls == InstClass::CondBranch;
        }
        if (!indexed_ok)
            continue;
        if (l.startIp != code.inst(l.insts.front().staticIdx).ip) {
            report(AuditViolation::Kind::Structural,
                   where + "tag does not match the first instruction");
        }
        if (uops != l.numUops || conds != l.numCondBranches) {
            report(AuditViolation::Kind::Structural,
                   where + "stored uop/branch counts are stale");
        }
        if (uops > limits_.maxUops) {
            report(AuditViolation::Kind::Structural,
                   where + "trace of " + std::to_string(uops) +
                       " uops exceeds the " +
                       std::to_string(limits_.maxUops) + "-uop limit");
        }
        if (conds > limits_.maxCondBranches) {
            report(AuditViolation::Kind::Structural,
                   where + "trace holds " + std::to_string(conds) +
                       " conditional branches (limit " +
                       std::to_string(limits_.maxCondBranches) + ")");
        }
        filled += l.numUops;
        for (const auto &e : l.insts) {
            const StaticInst &si = code.inst(e.staticIdx);
            for (unsigned s = 0; s < si.numUops; ++s)
                ++counted[makeUopId(si.ip, s)];
        }
    }
    if (filled != filledUops_) {
        report(AuditViolation::Kind::Accounting,
               "filledUops counter " + std::to_string(filledUops_) +
                   " != physical " + std::to_string(filled));
    }
    if (counted != residency_) {
        report(AuditViolation::Kind::Accounting,
               "residency map disagrees with resident lines");
    }
}

void
ckptSaveTraceLine(CkptSink &sink, const TraceLine &line)
{
    sink.b(line.valid);
    sink.u64(line.startIp);
    sink.u64(line.lru);
    sink.u64(line.insts.size());
    for (const EmbeddedInst &e : line.insts) {
        sink.i32(e.staticIdx);
        sink.u8(e.taken);
    }
    sink.u32(line.numUops);
    sink.u32(line.numCondBranches);
}

void
ckptLoadTraceLine(CkptSource &src, TraceLine &line)
{
    line.clear();
    line.valid = src.b();
    line.startIp = src.u64();
    line.lru = src.u64();
    uint64_t n = src.count(5);
    line.insts.reserve(src.ok() ? n : 0);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        EmbeddedInst e;
        e.staticIdx = src.i32();
        e.taken = src.u8();
        if (src.ok())
            line.insts.push_back(e);
    }
    line.numUops = src.u32();
    line.numCondBranches = src.u32();
}

void
TraceCache::ckptSave(CkptSink &sink) const
{
    sink.u64(lines_.size());
    for (const TraceLine &l : lines_)
        ckptSaveTraceLine(sink, l);
    sink.u64(clock_);

    std::vector<std::pair<UopId, uint32_t>> res(residency_.begin(),
                                                residency_.end());
    std::sort(res.begin(), res.end());
    sink.u64(res.size());
    for (const auto &[id, cnt] : res) {
        sink.u64(id);
        sink.u32(cnt);
    }
    sink.u64(filledUops_);
}

void
TraceCache::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(25);
    src.require(n == lines_.size());
    for (uint64_t i = 0; src.ok() && i < n; ++i)
        ckptLoadTraceLine(src, lines_[i]);
    clock_ = src.u64();

    residency_.clear();
    uint64_t nr = src.count(12);
    for (uint64_t i = 0; src.ok() && i < nr; ++i) {
        UopId id = src.u64();
        uint32_t cnt = src.u32();
        if (src.ok())
            residency_[id] = cnt;
    }
    filledUops_ = src.u64();
}

void
TraceCache::reset()
{
    for (auto &l : lines_)
        l.clear();
    residency_.clear();
    filledUops_ = 0;
    clock_ = 0;
    resetStats();
}

} // namespace xbs
