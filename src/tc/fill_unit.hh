/**
 * @file
 * Trace-cache fill unit: accumulates decoded instructions along the
 * executed path in build mode and emits finished TraceLines.
 */

#ifndef XBS_TC_FILL_UNIT_HH
#define XBS_TC_FILL_UNIT_HH

#include <functional>

#include "tc/trace_line.hh"
#include "trace/trace.hh"

namespace xbs
{

class TcFillUnit
{
  public:
    explicit TcFillUnit(const TraceLimits &limits) : limits_(limits) {}

    /** Abandon the current partial trace and start fresh. */
    void restart();

    /**
     * Feed one executed instruction (record @p rec of @p trace).
     * When the instruction completes a trace, the finished line is
     * handed to @p sink and filling restarts at the next instruction.
     *
     * @return true if a trace was completed by this instruction
     */
    bool feed(const Trace &trace, std::size_t rec,
              const std::function<void(const TraceLine &)> &sink);

    /** Whether a partial trace is being accumulated. */
    bool active() const { return line_.valid; }

    const TraceLine &pending() const { return line_; }

    /// @{ Warm-state checkpointing (src/ckpt): the partial trace.
    void ckptSave(CkptSink &sink) const { ckptSaveTraceLine(sink, line_); }
    void ckptLoad(CkptSource &src) { ckptLoadTraceLine(src, line_); }
    /// @}

  private:
    TraceLimits limits_;
    TraceLine line_;
};

} // namespace xbs

#endif // XBS_TC_FILL_UNIT_HH
