/**
 * @file
 * A trace-cache line: one dynamic trace of up to 16 uops with at most
 * 3 conditional branches, ending early on indirect branches and
 * returns ([Rote96] end conditions, as configured by the paper's
 * section 4: "a 4 way set-associative cache, where each line holds a
 * single trace of up to 16 uops with a maximum of 3 branches").
 */

#ifndef XBS_TC_TRACE_LINE_HH
#define XBS_TC_TRACE_LINE_HH

#include <cstdint>
#include <vector>

#include "isa/static_inst.hh"

namespace xbs
{

/** One macro instruction embedded in a trace, with its direction. */
struct EmbeddedInst
{
    int32_t staticIdx = 0;
    uint8_t taken = 0;  ///< embedded direction for cond branches
};

struct TraceLine
{
    bool valid = false;
    uint64_t startIp = 0;   ///< trace tag: IP of the first instruction
    uint64_t lru = 0;
    std::vector<EmbeddedInst> insts;
    unsigned numUops = 0;
    unsigned numCondBranches = 0;

    void
    clear()
    {
        valid = false;
        startIp = 0;
        insts.clear();
        numUops = 0;
        numCondBranches = 0;
    }
};

/** Build-time limits for trace construction. */
struct TraceLimits
{
    unsigned maxUops = 16;
    unsigned maxCondBranches = 3;
};

/// @{ TraceLine serialization (src/ckpt; defined in trace_cache.cc).
class CkptSink;
class CkptSource;
void ckptSaveTraceLine(CkptSink &sink, const TraceLine &line);
void ckptLoadTraceLine(CkptSource &src, TraceLine &line);
/// @}

} // namespace xbs

#endif // XBS_TC_TRACE_LINE_HH
