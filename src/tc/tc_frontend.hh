/**
 * @file
 * Trace-cache frontend (paper section 2.3): build mode fetches from
 * the legacy IC path while the fill unit assembles traces; delivery
 * mode supplies whole traces per cycle through a decoupling fetch
 * buffer drained at renamer bandwidth.
 */

#ifndef XBS_TC_TC_FRONTEND_HH
#define XBS_TC_TC_FRONTEND_HH

#include "frontend/frontend.hh"
#include "frontend/predictors.hh"
#include "ic/legacy_pipe.hh"
#include "tc/fill_unit.hh"
#include "tc/trace_cache.hh"

namespace xbs
{

/** TC-specific configuration. */
struct TcParams
{
    unsigned capacityUops = 32768;  ///< total uop capacity
    unsigned ways = 4;              ///< associativity (paper: 4)
    TraceLimits limits;             ///< 16 uops, 3 branches

    /** Keep building traces while in delivery mode as well
     *  (the basic model the paper compares against does not). */
    bool buildInDelivery = false;

    /**
     * Path associativity ([Jaco97] extension): allow several traces
     * with the same starting IP, distinguished by their embedded
     * paths, instead of the basic model's replace-on-conflict. The
     * frontend then selects the resident trace that matches the
     * predicted path best.
     */
    bool pathAssociative = false;
};

class TcFrontend : public Frontend
{
  public:
    TcFrontend(const FrontendParams &params, const TcParams &tc_params);

    void run(const Trace &trace) override;

    /// @{ Warm-state checkpoint/restore (src/ckpt).
    void saveState(CheckpointWriter &w) const override;
    Status restoreState(const CheckpointFile &f) override;
    /// @}

    const TraceCache &cache() const { return tc_; }
    const TcParams &tcParams() const { return tcParams_; }

    /** Uops supplied by partially matching traces. */
    uint64_t partialHitUops() const { return partialHitUops_; }

  protected:
    void
    registerPhases(PhaseProfiler *prof) override
    {
        // The legacy pipe runs as this frontend's build path.
        pipe_.attachProfiler(prof, phBuild_);
    }

  private:
    enum class Mode { Build, Delivery };

    /**
     * Supply one resident trace line along the actual path.
     * Advances @p rec; returns uops supplied and sets @p stall.
     */
    unsigned supplyLine(const Trace &trace, const TraceLine &line,
                        std::size_t &rec, unsigned &stall);

    /** Pick the trace to supply at record @p rec (path-associative
     *  selection when enabled, plain lookup otherwise). */
    const TraceLine *selectLine(const Trace &trace, std::size_t rec);

    TcParams tcParams_;
    PredictorBank preds_;
    LegacyPipe pipe_;
    TraceCache tc_;
    TcFillUnit fill_;
    uint64_t partialHitUops_ = 0;
};

} // namespace xbs

#endif // XBS_TC_TC_FRONTEND_HH
