#include "tc/fill_unit.hh"

#include "common/logging.hh"

namespace xbs
{

void
TcFillUnit::restart()
{
    line_.clear();
}

bool
TcFillUnit::feed(const Trace &trace, std::size_t rec,
                 const std::function<void(const TraceLine &)> &sink)
{
    const StaticInst &si = trace.inst(rec);

    // An instruction that does not fit the uop quota finishes the
    // pending trace first; the instruction starts the next trace.
    if (line_.valid && line_.numUops + si.numUops > limits_.maxUops) {
        sink(line_);
        line_.clear();
    }

    if (!line_.valid) {
        line_.valid = true;
        line_.startIp = si.ip;
    }

    EmbeddedInst e;
    e.staticIdx = trace.record(rec).staticIdx;
    e.taken = trace.record(rec).taken;
    line_.insts.push_back(e);
    line_.numUops += si.numUops;
    if (si.cls == InstClass::CondBranch)
        ++line_.numCondBranches;

    bool ends = si.endsTrace() ||
                line_.numCondBranches >= limits_.maxCondBranches ||
                line_.numUops >= limits_.maxUops;
    if (ends) {
        sink(line_);
        line_.clear();
        return true;
    }
    return false;
}

} // namespace xbs
