/**
 * @file
 * The trace cache proper: a set-associative array of TraceLines
 * indexed and tagged by the trace's starting IP. The basic academic
 * model has no path associativity: at most one trace per start IP,
 * so building a different path through the same start replaces the
 * old trace.
 *
 * The cache tracks uop redundancy (how many copies of each (ip, seq)
 * uop are resident) and fragmentation (filled vs. reserved slots),
 * the two effects the XBC is designed to eliminate.
 */

#ifndef XBS_TC_TRACE_CACHE_HH
#define XBS_TC_TRACE_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <functional>

#include "common/probe.hh"
#include "common/stats.hh"
#include "frontend/oracle.hh"
#include "isa/uop.hh"
#include "tc/trace_line.hh"
#include "trace/trace.hh"

namespace xbs
{

class TraceCache : public StatGroup
{
  public:
    /**
     * @param capacity_uops total uop capacity (e.g. 32768)
     * @param ways          associativity (paper: 4)
     * @param limits        per-line build limits
     * @param parent        stat group parent
     * @param probes        probe registry of the owning frontend for
     *                      the "array" track (nullptr: disabled)
     */
    TraceCache(unsigned capacity_uops, unsigned ways,
               const TraceLimits &limits, StatGroup *parent,
               ProbeManager *probes = nullptr);

    /** @return the resident trace starting at @p ip, or nullptr. */
    const TraceLine *lookup(uint64_t ip);

    /**
     * Path-associative lookup: all resident traces starting at
     * @p ip (at most `ways`); the caller selects by path. Counted
     * as one lookup; LRU updated when the caller reports its pick
     * through touch().
     */
    std::vector<const TraceLine *> lookupAll(uint64_t ip);

    /** LRU-refresh a line returned by lookupAll. */
    void touch(const TraceLine *line);

    /**
     * Insert a finished trace (replaces a same-IP trace if any;
     * with @p path_associative, only a same-IP *same-path* trace is
     * replaced and differing paths coexist in other ways).
     */
    void insert(const TraceLine &line, const StaticCode &code,
                bool path_associative = false);

    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }
    const TraceLimits &limits() const { return limits_; }

    /** Current uop redundancy: resident uop instances per unique. */
    double redundancy() const;

    /** Fraction of reserved uop slots actually filled. */
    double fillFactor() const;

    /**
     * Non-aborting structural audit: per-line build limits (uop and
     * conditional-branch caps, stored uop counts) and the
     * redundancy/fragmentation accounting recomputed against the
     * resident lines. Violations go to @p sink; the walk always
     * completes.
     */
    void auditStorage(
        const StaticCode &code,
        const std::function<void(AuditViolation)> &sink) const;

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat lookups{this, "lookups", "trace cache lookups"};
    ScalarStat hits{this, "hits", "trace cache lookup hits"};
    ScalarStat inserts{this, "inserts", "traces built and inserted"};
    ScalarStat replacements{this, "replacements",
        "same-IP trace replacements (path conflicts)"};
    ScalarStat evictions{this, "evictions", "LRU evictions"};

    void reset();

  private:
    std::size_t setOf(uint64_t ip) const;
    void accountInsert(const TraceLine &line, const StaticCode &code);
    void accountEvict(const TraceLine &line, const StaticCode &code);

    unsigned numSets_;
    unsigned ways_;
    TraceLimits limits_;
    std::vector<TraceLine> lines_;
    uint64_t clock_ = 0;

    /// @{ Redundancy / fragmentation accounting.
    std::unordered_map<UopId, uint32_t> residency_;
    uint64_t filledUops_ = 0;
    /// @}

    /// @{ "array" track: trace inserts (value = uops in the line),
    ///    LRU evictions and an occupancy counter of resident uops.
    ProbePoint insertProbe_;
    ProbePoint evictProbe_;
    ProbePoint occupancyProbe_;
    /// @}
};

} // namespace xbs

#endif // XBS_TC_TRACE_CACHE_HH
