#include "tc/tc_frontend.hh"

#include "common/logging.hh"
#include "frontend/control.hh"

namespace xbs
{

TcFrontend::TcFrontend(const FrontendParams &params,
                       const TcParams &tc_params)
    : Frontend("tc", params), tcParams_(tc_params), preds_(params_),
      pipe_(params_, metrics_, preds_, &probes_),
      tc_(tc_params.capacityUops, tc_params.ways, tc_params.limits,
          &root_, &probes_),
      fill_(tc_params.limits)
{
    pipe_.attachAttrib(&attrib_);
}

const TraceLine *
TcFrontend::selectLine(const Trace &trace, std::size_t rec)
{
    if (!tcParams_.pathAssociative)
        return tc_.lookup(trace.inst(rec).ip);

    // Path-associative selection: among the same-IP candidates, take
    // the one whose embedded path matches the actual path longest
    // (a perfect next-trace selector, the upper bound of [Jaco97]).
    auto candidates = tc_.lookupAll(trace.inst(rec).ip);
    const TraceLine *best = nullptr;
    std::size_t best_match = 0;
    for (const TraceLine *l : candidates) {
        std::size_t m = 0;
        for (; m < l->insts.size() &&
               rec + m < trace.numRecords(); ++m) {
            if (trace.record(rec + m).staticIdx !=
                l->insts[m].staticIdx) {
                break;
            }
        }
        if (!best || m > best_match) {
            best = l;
            best_match = m;
        }
    }
    if (best)
        tc_.touch(best);
    return best;
}

unsigned
TcFrontend::supplyLine(const Trace &trace, const TraceLine &line,
                       std::size_t &rec, unsigned &stall)
{
    unsigned supplied = 0;
    bool full_match = true;
    attrib_.clearDisruption();

    for (const auto &e : line.insts) {
        if (rec >= trace.numRecords())
            break;
        if (trace.record(rec).staticIdx != e.staticIdx) {
            // The resident trace was built along a different path
            // than the one executing now: partial hit.
            full_match = false;
            attrib_.noteDisruption(Cause::PartialHit);
            break;
        }

        const StaticInst &si = trace.inst(rec);
        const bool actual_taken = trace.record(rec).taken != 0;
        unsigned penalty = 0;
        bool trace_diverges = false;

        if (si.isControl()) {
            penalty = predictControl(params_, metrics_, preds_, trace,
                                     rec, /*legacy_path=*/false,
                                     &attrib_);
            if (si.cls == InstClass::CondBranch && penalty == 0 &&
                (e.taken != 0) != actual_taken) {
                // Predictor right, embedded path wrong: supply stops
                // after the branch, next lookup resumes at the
                // actual target. No bubble: the disagreement is
                // known at prediction time.
                trace_diverges = true;
            }
        }

        oracleConsume(rec, e.staticIdx, si.numUops);
        supplied += si.numUops;
        ++rec;

        if (penalty > 0) {
            stall += penalty;
            full_match = false;
            break;
        }
        if (trace_diverges) {
            full_match = false;
            attrib_.noteDisruption(Cause::PartialHit);
            break;
        }
    }

    if (!full_match)
        partialHitUops_ += supplied;
    return supplied;
}

void
TcFrontend::saveState(CheckpointWriter &w) const
{
    Frontend::saveState(w);
    CkptSink sink;
    preds_.ckptSave(sink);
    pipe_.ckptSave(sink);
    tc_.ckptSave(sink);
    fill_.ckptSave(sink);
    sink.u64(partialHitUops_);
    w.addSection("tc", sink.take());
}

Status
TcFrontend::restoreState(const CheckpointFile &f)
{
    Status st = Frontend::restoreState(f);
    if (!st.isOk())
        return st;
    const std::string *sec = f.section("tc");
    if (!sec) {
        return Status::error(StatusCode::Corrupt,
                             "checkpoint lacks a 'tc' section");
    }
    CkptSource src(*sec);
    preds_.ckptLoad(src);
    pipe_.ckptLoad(src);
    tc_.ckptLoad(src);
    fill_.ckptLoad(src);
    partialHitUops_ = src.u64();
    if (!src.consumed()) {
        return Status::error(StatusCode::Corrupt,
                             "malformed checkpoint 'tc' section");
    }
    return Status::ok();
}

void
TcFrontend::run(const Trace &trace)
{
    const std::size_t num_records = trace.numRecords();
    std::size_t rec = 0;
    Mode mode = Mode::Build;
    unsigned buffer = 0;   // undelivered uops sitting in the XBQ-like
                           // fetch buffer, drained 8/cycle
    unsigned stall = 0;
    if (auto resume = takeResume()) {
        rec = (std::size_t)resume->rec;
        mode = resume->mode ? Mode::Delivery : Mode::Build;
        buffer = resume->buffer;
        stall = resume->stall;
    } else {
        fill_.restart();
        attrib_.enterBuild(Cause::ColdStart);
    }

    while ((rec < num_records || buffer > 0) && !stopRequested()) {
        maybeCheckpoint(rec, mode == Mode::Delivery ? 1 : 0, buffer,
                        stall);
        ++metrics_.cycles;
        metrics_.traceRecords.set(rec);
        observeCycle();
        traceMode(mode == Mode::Build ? "build" : "delivery");

        if (stall > 0) {
            // Fetch-silent bubble; the buffer keeps draining, but
            // neither the uops nor the cycle count toward the
            // steady-state bandwidth metric.
            --stall;
            ++metrics_.stallCycles;
            attrib_.chargeSilentCycle();
            buffer -= std::min(buffer, params_.renamerWidth);
            continue;
        }

        if (mode == Mode::Delivery) {
            ++metrics_.deliveryCycles;

            if (buffer < params_.renamerWidth && rec < num_records) {
                ScopedPhase arrayTimer(prof_, phArray_);
                const TraceLine *line = selectLine(trace, rec);
                if (line) {
                    std::size_t prev = rec;
                    unsigned got =
                        supplyLine(trace, *line, rec, stall);
                    metrics_.deliveryUops += got;
                    buffer += got;
                    if (tcParams_.buildInDelivery) {
                        // [Frie97]-style alternative fill policy:
                        // keep (re)building traces from the supplied
                        // stream so partial-hit paths get their own
                        // traces without a build-mode excursion.
                        for (std::size_t i = prev; i < rec; ++i) {
                            fill_.feed(trace, i,
                                       [&](const TraceLine &l) {
                                           tc_.insert(
                                               l, trace.code(),
                                               tcParams_
                                                   .pathAssociative);
                                       });
                        }
                    }
                } else if (buffer == 0) {
                    mode = Mode::Build;
                    ++metrics_.modeSwitches;
                    fill_.restart();
                    attrib_.enterBuild(Cause::StructMiss);
                    // This cycle becomes the first build cycle.
                    --metrics_.deliveryCycles;
                    ++metrics_.buildCycles;
                    attrib_.chargeBuildCycle();
                    std::size_t prev = rec;
                    ScopedPhase buildTimer(prof_, phBuild_);
                    LegacyPipe::Result r = pipe_.cycle(trace, rec);
                    metrics_.buildUops += r.uops;
                    attrib_.chargeBuildUops(r.uops);
                    stall += r.stall;
                    bool completed = false;
                    for (std::size_t i = prev; i < rec; ++i) {
                        oracleConsume(i, kNoTarget, 0);
                        completed |= fill_.feed(
                            trace, i, [&](const TraceLine &l) {
                                tc_.insert(l, trace.code(),
                                           tcParams_.pathAssociative);
                            });
                    }
                    if (completed && rec < num_records &&
                        tc_.lookup(trace.inst(rec).ip)) {
                        mode = Mode::Delivery;
                    }
                    continue;
                }
            }
            {
                unsigned drained =
                    std::min(buffer, params_.renamerWidth);
                metrics_.renamedUops += drained;
                buffer -= drained;
            }
        } else {
            ++metrics_.buildCycles;
            attrib_.chargeBuildCycle();
            std::size_t prev = rec;
            ScopedPhase buildTimer(prof_, phBuild_);
            LegacyPipe::Result r = pipe_.cycle(trace, rec);
            metrics_.buildUops += r.uops;
            attrib_.chargeBuildUops(r.uops);
            stall += r.stall;
            bool completed = false;
            for (std::size_t i = prev; i < rec; ++i) {
                oracleConsume(i, kNoTarget, 0);
                completed |= fill_.feed(
                    trace, i, [&](const TraceLine &l) {
                        tc_.insert(l, trace.code(),
                                   tcParams_.pathAssociative);
                    });
            }
            if (completed && rec < num_records &&
                tc_.lookup(trace.inst(rec).ip)) {
                mode = Mode::Delivery;
            }
        }
    }
    metrics_.traceRecords.set(rec);
    traceModeDone();
}

} // namespace xbs
