/**
 * @file
 * AB-COMPLEX - ablation of the same-suffix/different-prefix storage
 * policy (paper section 3.3, build case 3): complex XBs versus the
 * prefix-as-independent-XB alternative versus a naive duplicating
 * baseline.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-COMPLEX",
                "section 3.3 ablation (case-3 storage policy)",
                "complex XBs keep long blocks without redundancy; "
                "prefix-split shortens blocks; duplication "
                "reintroduces TC-style copies");

    auto config = [](XbcParams::ComplexMode m) {
        SimConfig c = SimConfig::xbcBaseline();
        c.xbc.complexMode = m;
        return c;
    };

    SuiteRunner runner;
    auto results = runner.sweep({
        {"complex", config(XbcParams::ComplexMode::Complex)},
        {"prefix-split",
         config(XbcParams::ComplexMode::PrefixSplit)},
        {"duplicate", config(XbcParams::ComplexMode::Duplicate)},
    });

    TextTable t({"policy", "miss rate", "bandwidth", "redundancy"});
    for (const char *l : {"complex", "prefix-split", "duplicate"}) {
        double red = 0;
        unsigned n = 0;
        for (const auto &r : results) {
            if (r.label == l) {
                red += r.redundancy;
                ++n;
            }
        }
        t.addRow({l,
                  TextTable::pct(SuiteRunner::meanMissRate(results,
                                                           l)),
                  TextTable::num(SuiteRunner::meanBandwidth(results,
                                                            l)),
                  TextTable::num(n ? red / n : 0, 3)});
    }
    std::printf("%s\n", t.render().c_str());

    printSuiteMeans(results,
                    {"complex", "prefix-split", "duplicate"},
                    meanMissRateWrapper, "miss rate", true);
    return 0;
}
