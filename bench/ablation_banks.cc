/**
 * @file
 * AB-BANKS - ablation of the bank structure (paper section 3.2):
 * 2/4/8 banks per set with the row width fixed at 16 uops. More
 * banks mean finer conflict granularity (fewer deferred uops) but a
 * shorter per-bank line.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-BANKS", "section 3.2 ablation (bank count)",
                "4 banks x 4 uops balances conflicts and "
                "fragmentation");

    auto config = [](unsigned banks) {
        SimConfig c = SimConfig::xbcBaseline();
        c.xbc.numBanks = banks;
        c.xbc.bankUops = 16 / banks;
        return c;
    };

    SuiteRunner runner;
    auto results = runner.sweep({
        {"2banks", config(2)},
        {"4banks", config(4)},
        {"8banks", config(8)},
    });

    TextTable t({"config", "bandwidth", "miss", "conflict defers"});
    for (const char *l : {"2banks", "4banks", "8banks"}) {
        uint64_t defers = 0;
        for (const auto &r : results) {
            if (r.label == l)
                defers += r.bankConflictDefers;
        }
        t.addRow({l,
                  TextTable::num(SuiteRunner::meanBandwidth(results,
                                                            l)),
                  TextTable::pct(SuiteRunner::meanMissRate(results,
                                                           l)),
                  std::to_string(defers)});
    }
    std::printf("%s\n", t.render().c_str());

    printSuiteMeans(results, {"2banks", "4banks", "8banks"},
                    meanBandwidthWrapper, "bandwidth", false);
    return 0;
}
