/**
 * @file
 * PHASE - quantifies the paper's section 1 execution-phase story:
 * the cycle breakdown into steady-state supply (delivery), transition
 * (build mode after disruptive events), and stall (mispredict
 * bubbles, IC misses), against the [Mich99] rule of thumb of roughly
 * 50% / 30% / 20% - and how the breakdown responds to the resteer
 * penalty, which is the lever a deeper pipeline pulls.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("PHASE",
                "section 1 (steady state / transition / stall)",
                "[Mich99] rule of thumb: ~50% steady, ~30% "
                "transition, ~20% stall");

    SuiteRunner runner;

    // Phase breakdown per structure at the default 10-cycle penalty.
    {
        std::vector<std::pair<std::string, SimConfig>> configs = {
            {"TC", SimConfig::tcBaseline(32768)},
            {"XBC", SimConfig::xbcBaseline(32768)},
        };

        TextTable t({"frontend", "delivery", "build", "stall",
                     "overall uops/cycle"});
        for (const auto &[label, config] : configs) {
            uint64_t delivery = 0, build = 0, stall = 0, cycles = 0;
            double ipc = 0;
            unsigned n = 0;
            for (const auto &name : runner.workloads()) {
                auto fe = makeFrontend(config);
                Trace trace = makeCatalogTrace(name);
                fe->run(trace);
                const auto &m = fe->metrics();
                delivery += m.deliveryCycles.value();
                build += m.buildCycles.value();
                stall += m.stallCycles.value();
                cycles += m.cycles.value();
                ipc += m.overallIpc();
                ++n;
            }
            t.addRow({label,
                      TextTable::pct((double)delivery / cycles),
                      TextTable::pct((double)build / cycles),
                      TextTable::pct((double)stall / cycles),
                      TextTable::num(ipc / n)});
        }
        std::printf("cycle breakdown (mean over 21 traces, "
                    "10-cycle resteer):\n%s\n",
                    t.render().c_str());
    }

    // Penalty sensitivity: deeper pipelines stretch the stall phase.
    {
        TextTable t({"resteer penalty", "XBC stall share",
                     "XBC overall uops/cycle"});
        for (unsigned penalty : {5u, 10u, 20u}) {
            SimConfig c = SimConfig::xbcBaseline(32768);
            c.frontend.mispredictPenalty = penalty;
            uint64_t stall = 0, cycles = 0;
            double ipc = 0;
            unsigned n = 0;
            for (const auto &name : runner.workloads()) {
                auto fe = makeFrontend(c);
                Trace trace = makeCatalogTrace(name);
                fe->run(trace);
                stall += fe->metrics().stallCycles.value();
                cycles += fe->metrics().cycles.value();
                ipc += fe->metrics().overallIpc();
                ++n;
            }
            t.addRow({std::to_string(penalty),
                      TextTable::pct((double)stall / cycles),
                      TextTable::num(ipc / n)});
        }
        std::printf("resteer-penalty sensitivity:\n%s\n",
                    t.render().c_str());
    }
    return 0;
}
