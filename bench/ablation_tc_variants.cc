/**
 * @file
 * AB-TC - the trace-cache design space the paper's section 2.3
 * sketches: the basic [Rote96] model the XBC is compared against,
 * path associativity ([Jaco97]), an always-build fill policy
 * ([Frie97]), and their combination - versus the XBC.
 *
 * This quantifies how much of the XBC's miss-rate advantage survives
 * against improved trace caches: the published enhancements trade
 * redundancy for path coverage, while the XBC removes the redundancy
 * outright.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-TC",
                "section 2.3 trace-cache variants vs the XBC",
                "the XBC's advantage comes from removing redundancy, "
                "not from the TC's fill/selection policies");

    auto tc = [](bool path, bool always) {
        SimConfig c = SimConfig::tcBaseline(32768);
        c.tc.pathAssociative = path;
        c.tc.buildInDelivery = always;
        return c;
    };

    SuiteRunner runner;
    auto results = runner.sweep({
        {"tc-base", tc(false, false)},
        {"tc-path", tc(true, false)},
        {"tc-always", tc(false, true)},
        {"tc-both", tc(true, true)},
        {"xbc", SimConfig::xbcBaseline(32768)},
    });

    TextTable t({"config", "miss rate", "bandwidth", "redundancy"});
    for (const char *l :
         {"tc-base", "tc-path", "tc-always", "tc-both", "xbc"}) {
        double red = 0;
        unsigned n = 0;
        for (const auto &r : results) {
            if (r.label == l) {
                red += r.redundancy;
                ++n;
            }
        }
        t.addRow({l,
                  TextTable::pct(SuiteRunner::meanMissRate(results,
                                                           l)),
                  TextTable::num(SuiteRunner::meanBandwidth(results,
                                                            l)),
                  TextTable::num(n ? red / n : 0, 3)});
    }
    std::printf("%s\n", t.render().c_str());
    maybeWriteCsv("ablation_tc_variants", t);

    printSuiteMeans(results,
                    {"tc-base", "tc-both", "xbc"},
                    meanMissRateWrapper, "miss rate", true);
    return 0;
}
