/**
 * @file
 * FIG9 - reproduces Figure 9: uop miss rate (percent of uops brought
 * from the IC) versus total cache size for the XBC and the TC.
 *
 * Paper claims: the XBC's reduced redundancy cuts misses by ~29% at
 * every size, and the TC needs >50% more capacity to match the XBC
 * hit rate.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("FIG9", "Figure 9 (miss rate vs cache size)",
                "~29% fewer misses at all sizes; TC needs >50% more "
                "capacity to match");

    const std::vector<unsigned> sizes = {8192, 16384, 32768, 65536};

    SuiteRunner runner;
    std::vector<std::pair<std::string, SimConfig>> configs;
    for (unsigned s : sizes) {
        configs.push_back({"TC" + std::to_string(s / 1024) + "K",
                           SimConfig::tcBaseline(s)});
        configs.push_back({"XBC" + std::to_string(s / 1024) + "K",
                           SimConfig::xbcBaseline(s)});
    }
    // Extra TC points for the capacity-equivalence question.
    configs.push_back({"TC48K", SimConfig::tcBaseline(49152)});
    configs.push_back({"TC96K", SimConfig::tcBaseline(98304)});

    auto results = runner.sweep(configs);

    TextTable series({"size (uops)", "TC miss", "XBC miss",
                      "reduction"});
    for (unsigned s : sizes) {
        std::string k = std::to_string(s / 1024) + "K";
        double tc = SuiteRunner::meanMissRate(results, "TC" + k);
        double xbc = SuiteRunner::meanMissRate(results, "XBC" + k);
        series.addRow({k, TextTable::pct(tc), TextTable::pct(xbc),
                       TextTable::pct(tc > 0 ? 1.0 - xbc / tc : 0.0)});
    }
    std::printf("miss rate vs size (mean over 21 traces):\n%s\n",
                series.render().c_str());
    maybeWriteCsv("fig9_missrate_size", series);

    for (unsigned s : {8192u, 32768u}) {
        std::string k = std::to_string(s / 1024) + "K";
        std::vector<std::string> labels = {"TC" + k, "XBC" + k};
        std::printf("-- at %s uops --\n", k.c_str());
        printSuiteMeans(results, labels, meanMissRateWrapper,
                        "miss rate", true);
    }

    // Capacity equivalence: how much TC does it take to match the
    // XBC at 32K uops?
    double xbc32 = SuiteRunner::meanMissRate(results, "XBC32K");
    struct Point { const char *label; double cap; };
    const Point tc_points[] = {
        {"TC32K", 32768}, {"TC48K", 49152}, {"TC64K", 65536},
        {"TC96K", 98304},
    };
    double needed = 0;
    for (const auto &p : tc_points) {
        if (SuiteRunner::meanMissRate(results, p.label) <= xbc32) {
            needed = p.cap;
            break;
        }
    }
    if (needed > 0) {
        std::printf("TC capacity matching XBC@32K: ~%.0fK uops "
                    "(%.0f%% more); paper: >50%% more\n",
                    needed / 1024, 100.0 * (needed / 32768.0 - 1.0));
    } else {
        std::printf("TC does not match XBC@32K miss rate even at "
                    "96K uops (paper: >50%% more capacity needed)\n");
    }
    return 0;
}
