/**
 * @file
 * AB-PROMO - ablation of branch promotion (paper section 3.8):
 * promotion on versus off, measuring miss rate, bandwidth, the
 * number of conditional predictions consumed, and promotion counts.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-PROMO", "section 3.8 ablation (promotion on/off)",
                "promotion lengthens XBs (8.0 -> 10.0 uops) without "
                "extra predictions");

    SimConfig on = SimConfig::xbcBaseline();
    SimConfig off = SimConfig::xbcBaseline();
    off.xbc.promotionEnabled = false;

    SuiteRunner runner;
    auto results = runner.sweep({{"promo-on", on}, {"promo-off", off}});

    TextTable t({"workload", "on bw", "off bw", "on miss", "off miss",
                 "promos", "preds saved"});
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        const auto &a = results[i];      // on
        const auto &b = results[i + 1];  // off
        int64_t saved = (int64_t)b.condPredictions -
                        (int64_t)a.condPredictions;
        t.addRow({a.workload, TextTable::num(a.bandwidth),
                  TextTable::num(b.bandwidth),
                  TextTable::pct(a.missRate),
                  TextTable::pct(b.missRate),
                  std::to_string(a.promotions),
                  std::to_string(saved)});
    }
    std::printf("%s\n", t.render().c_str());

    printSuiteMeans(results, {"promo-on", "promo-off"},
                    meanBandwidthWrapper, "bandwidth", false);
    printSuiteMeans(results, {"promo-on", "promo-off"},
                    meanMissRateWrapper, "miss rate", true);
    return 0;
}
