/**
 * @file
 * FIG8 - reproduces Figure 8: XBC versus TC uop bandwidth per trace
 * at equal 32K-uop capacity.
 *
 * Paper claim: "the difference between the XBC and TC bandwidth is
 * negligible" (both far above the IC baseline).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("FIG8", "Figure 8 (uop bandwidth, 32K-uop caches)",
                "XBC matches TC bandwidth; both beat the IC");

    SuiteRunner runner;
    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"IC", SimConfig::icBaseline()},
        {"TC", SimConfig::tcBaseline(32768)},
        {"XBC", SimConfig::xbcBaseline(32768)},
    };

    TextTable per({"workload", "suite", "IC bw", "TC bw", "XBC bw",
                   "XBC/TC"});
    auto results = runner.sweep(configs);
    for (std::size_t i = 0; i + 2 < results.size(); i += 3) {
        const auto &ic = results[i];
        const auto &tc = results[i + 1];
        const auto &xbc = results[i + 2];
        per.addRow({ic.workload, ic.suite,
                    TextTable::num(ic.bandwidth),
                    TextTable::num(tc.bandwidth),
                    TextTable::num(xbc.bandwidth),
                    TextTable::num(xbc.bandwidth / tc.bandwidth)});
    }
    std::printf("%s\n", per.render().c_str());
    maybeWriteCsv("fig8_bandwidth", per);

    printSuiteMeans(results, {"IC", "TC", "XBC"},
                    meanBandwidthWrapper, "uop bandwidth", false);

    double tc_bw = SuiteRunner::meanBandwidth(results, "TC");
    double xbc_bw = SuiteRunner::meanBandwidth(results, "XBC");
    std::printf("paper: negligible difference; measured: "
                "TC %.2f vs XBC %.2f (ratio %.3f)\n",
                tc_bw, xbc_bw, xbc_bw / tc_bw);
    return 0;
}
