/**
 * @file
 * MICRO - google-benchmark microbenchmarks of the core structures:
 * throughput of XBC insert/lookup, TC insert/lookup, GSHARE
 * predict/update, the executor, and block-length statistics.
 *
 * These quantify the simulator itself (host performance), not the
 * modeled machine.
 */

#include <benchmark/benchmark.h>

#include "bpred/direction.hh"
#include "core/data_array.hh"
#include "tc/trace_cache.hh"
#include "trace/trace_stats.hh"
#include "workload/catalog.hh"
#include "workload/executor.hh"

namespace xbs
{
namespace
{

const Trace &
cachedTrace()
{
    static const Trace trace = makeCatalogTrace("gcc", 100000);
    return trace;
}

void
BM_ExecutorThroughput(benchmark::State &state)
{
    auto prog = buildCatalogProgram(findWorkload("gcc"));
    for (auto _ : state) {
        Executor ex(prog, 1);
        Trace t = ex.run((uint64_t)state.range(0));
        benchmark::DoNotOptimize(t.numRecords());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecutorThroughput)->Arg(10000)->Unit(
    benchmark::kMillisecond);

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    GsharePredictor g(16);
    uint64_t ip = 0x400000;
    uint64_t n = 0;
    for (auto _ : state) {
        bool p = g.predict(ip + (n & 0xff) * 8);
        g.update(ip + (n & 0xff) * 8, (n & 3) != 0);
        benchmark::DoNotOptimize(p);
        ++n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_XbcInsert(benchmark::State &state)
{
    const Trace &trace = cachedTrace();
    XbcParams params;
    for (auto _ : state) {
        state.PauseTiming();
        StatGroup root("bench");
        XbcDataArray arr(params, &root);
        arr.bindCode(&trace.code());
        state.ResumeTiming();

        XbSeq seq;
        uint64_t inserts = 0;
        for (std::size_t i = 0; i < trace.numRecords(); ++i) {
            const auto &si = trace.inst(i);
            if (seq.size() + si.numUops > params.xbQuotaUops) {
                seq.clear();
            }
            appendInstUops(trace.code(), trace.record(i).staticIdx,
                           seq);
            if (si.endsXb()) {
                XbPointer ptr;
                arr.insert(seq, si.ip, 0, &ptr);
                seq.clear();
                ++inserts;
            }
        }
        benchmark::DoNotOptimize(inserts);
    }
    state.SetItemsProcessed(state.iterations() *
                            cachedTrace().numRecords());
}
BENCHMARK(BM_XbcInsert)->Unit(benchmark::kMillisecond);

void
BM_XbcLookup(benchmark::State &state)
{
    const Trace &trace = cachedTrace();
    XbcParams params;
    StatGroup root("bench");
    XbcDataArray arr(params, &root);
    arr.bindCode(&trace.code());

    // Populate and remember pointers.
    std::vector<XbPointer> ptrs;
    XbSeq seq;
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        const auto &si = trace.inst(i);
        if (seq.size() + si.numUops > params.xbQuotaUops)
            seq.clear();
        appendInstUops(trace.code(), trace.record(i).staticIdx, seq);
        if (si.endsXb()) {
            XbPointer ptr;
            arr.insert(seq, si.ip, 0, &ptr);
            if (ptr.valid)
                ptrs.push_back(ptr);
            seq.clear();
        }
    }

    std::size_t n = 0;
    for (auto _ : state) {
        const XbPointer &p = ptrs[n++ % ptrs.size()];
        auto acc = arr.lookup(p.xbIp, p.mask, p.entryIdx);
        benchmark::DoNotOptimize(acc.variant);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XbcLookup);

void
BM_TcInsertLookup(benchmark::State &state)
{
    const Trace &trace = cachedTrace();
    for (auto _ : state) {
        state.PauseTiming();
        StatGroup root("bench");
        TraceCache tc(32768, 4, TraceLimits{}, &root);
        state.ResumeTiming();

        TraceLine line;
        line.valid = true;
        uint64_t ops = 0;
        for (std::size_t i = 0; i < trace.numRecords(); ++i) {
            const auto &si = trace.inst(i);
            if (line.insts.empty())
                line.startIp = si.ip;
            if (line.numUops + si.numUops > 16) {
                tc.insert(line, trace.code());
                ++ops;
                line.clear();
                line.valid = true;
                line.startIp = si.ip;
            }
            line.insts.push_back(EmbeddedInst{
                trace.record(i).staticIdx, trace.record(i).taken});
            line.numUops += si.numUops;
            if (si.endsTrace()) {
                tc.insert(line, trace.code());
                ++ops;
                line.clear();
                line.valid = true;
            }
            tc.lookup(si.ip);
        }
        benchmark::DoNotOptimize(ops);
    }
    state.SetItemsProcessed(state.iterations() *
                            cachedTrace().numRecords());
}
BENCHMARK(BM_TcInsertLookup)->Unit(benchmark::kMillisecond);

void
BM_BlockLengthStats(benchmark::State &state)
{
    const Trace &trace = cachedTrace();
    for (auto _ : state) {
        auto s = computeBlockLengthStats(trace);
        benchmark::DoNotOptimize(s.xb.total());
    }
    state.SetItemsProcessed(state.iterations() *
                            cachedTrace().numRecords());
}
BENCHMARK(BM_BlockLengthStats)->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace xbs

BENCHMARK_MAIN();
