/**
 * @file
 * AB-XBTB - ablation of the XBTB size. The paper fixes an 8K-entry
 * XBTB (section 4); since the XBTB is the only road into the XBC, an
 * undersized XBTB forces build-mode switches even when the data is
 * resident.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-XBTB", "section 4 configuration (8K-entry XBTB)",
                "the XBTB is the only access path; undersizing it "
                "costs hit rate");

    auto config = [](unsigned entries) {
        SimConfig c = SimConfig::xbcBaseline();
        c.xbc.xbtbEntries = entries;
        return c;
    };

    SuiteRunner runner;
    auto results = runner.sweep({
        {"1K", config(1024)},
        {"2K", config(2048)},
        {"4K", config(4096)},
        {"8K", config(8192)},
        {"16K", config(16384)},
    });

    TextTable t({"XBTB entries", "miss rate", "bandwidth",
                 "mode switches"});
    for (const char *l : {"1K", "2K", "4K", "8K", "16K"}) {
        uint64_t sw = 0;
        for (const auto &r : results) {
            if (r.label == l)
                sw += r.modeSwitches;
        }
        t.addRow({l,
                  TextTable::pct(SuiteRunner::meanMissRate(results,
                                                           l)),
                  TextTable::num(SuiteRunner::meanBandwidth(results,
                                                            l)),
                  std::to_string(sw)});
    }
    std::printf("%s\n", t.render().c_str());

    printSuiteMeans(results, {"1K", "8K", "16K"},
                    meanMissRateWrapper, "miss rate", true);
    return 0;
}
