/**
 * @file
 * SURVEY - the paper's section 2 taxonomy as one experiment: all five
 * instruction-supply mechanisms (IC, decoded cache, trace cache,
 * block-based trace cache, XBC) at equal 32K-uop capacity over the
 * 21-trace catalog.
 *
 * Expected ordering per the paper's narrative:
 *  - IC: high hit rate but decode-limited bandwidth;
 *  - DC: removes decode latency, keeps IC-like bandwidth, pays
 *    fragmentation;
 *  - TC: high bandwidth, poor hit rate (uop redundancy);
 *  - BBTC: redundancy moved to pointers, more fragmentation;
 *  - XBC: TC bandwidth with a (nearly) redundancy-free array.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("SURVEY",
                "section 2 (frontend alternatives), all at 32K uops",
                "XBC pairs TC-class bandwidth with the best hit "
                "rate of the decoded structures");

    SuiteRunner runner;
    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"IC", SimConfig::icBaseline()},
        {"DC", SimConfig::dcBaseline(32768)},
        {"TC", SimConfig::tcBaseline(32768)},
        {"TCpath", [] {
             SimConfig c = SimConfig::tcBaseline(32768);
             c.tc.pathAssociative = true;
             return c;
         }()},
        {"BBTC", SimConfig::bbtcBaseline(32768)},
        {"XBC", SimConfig::xbcBaseline(32768)},
    };
    auto results = runner.sweep(configs);

    const std::vector<std::string> labels = {"IC", "DC", "TC",
                                             "TCpath", "BBTC", "XBC"};
    printSuiteMeans(results, labels, meanBandwidthWrapper,
                    "uop bandwidth", false);
    printSuiteMeans(results, labels, meanMissRateWrapper,
                    "uop miss rate", true);

    // Structure-quality metrics.
    TextTable t({"frontend", "redundancy", "fill factor"});
    for (const auto &l : labels) {
        double red = 0, fill = 0;
        unsigned n = 0;
        for (const auto &r : results) {
            if (r.label == l) {
                red += r.redundancy;
                fill += r.fillFactor;
                ++n;
            }
        }
        t.addRow({l, TextTable::num(n ? red / n : 0, 3),
                  TextTable::num(n ? fill / n : 0, 3)});
    }
    std::printf("storage quality (BBTC redundancy is pointer "
                "redundancy):\n%s\n",
                t.render().c_str());
    return 0;
}
