/**
 * @file
 * FIG1 - reproduces Figure 1 and the section 3.1 length statistics:
 * the distribution and averages of basic blocks, extended blocks,
 * XBs with promotion, and dual XBs, all capped at 16 uops.
 *
 * Paper values (IA-32, averages in uops): basic block 7.7, XB 8.0,
 * XB with promotion 10.0, dual XB 12.7.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "trace/trace_stats.hh"

using namespace xbs;

int
main()
{
    benchHeader("FIG1", "Figure 1 (block length distribution)",
                "avg uops: BB 7.7, XB 8.0, XB+promo 10.0, dual 12.7");

    BlockLengthStats total;
    TextTable per({"workload", "suite", "bb", "xb", "xb+promo",
                   "dual"});

    for (const auto &e : workloadCatalog()) {
        Trace trace = makeCatalogTrace(e.name);
        auto s = computeBlockLengthStats(trace);
        per.addRow({e.name, e.suite,
                    TextTable::num(s.basicBlock.mean()),
                    TextTable::num(s.xb.mean()),
                    TextTable::num(s.xbPromoted.mean()),
                    TextTable::num(s.dualXb.mean())});
        total.merge(s);
    }

    std::printf("%s\n", per.render().c_str());
    maybeWriteCsv("fig1_lengths", per);

    TextTable cmp({"block type", "paper", "measured"});
    cmp.addRow({"basic block", "7.7",
                TextTable::num(total.basicBlock.mean())});
    cmp.addRow({"extended block (XB)", "8.0",
                TextTable::num(total.xb.mean())});
    cmp.addRow({"XB with promotion", "10.0",
                TextTable::num(total.xbPromoted.mean())});
    cmp.addRow({"dual XB", "12.7",
                TextTable::num(total.dualXb.mean())});
    std::printf("aggregate averages (16-uop cap):\n%s\n",
                cmp.render().c_str());

    // The figure itself: length distribution per block type.
    TextTable dist({"len", "bb%", "xb%", "xb+promo%", "dual%"});
    for (uint32_t v = 1; v <= 16; ++v) {
        dist.addRow({std::to_string(v),
                     TextTable::num(100 * total.basicBlock.fraction(v),
                                    1),
                     TextTable::num(100 * total.xb.fraction(v), 1),
                     TextTable::num(100 * total.xbPromoted.fraction(v),
                                    1),
                     TextTable::num(100 * total.dualXb.fraction(v),
                                    1)});
    }
    std::printf("length distribution (%% of blocks):\n%s\n",
                dist.render().c_str());

    std::printf("%s\n",
                total.xb.render("XB length histogram").c_str());
    return 0;
}
