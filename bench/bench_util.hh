/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: standard
 * header, trace-length handling, and suite aggregation printing.
 *
 * Every bench runs with no arguments and honors:
 *   XBS_TRACE_LEN=<n>  instructions per trace (default 2,000,000)
 *   XBS_FAST=1         quick mode (300,000 instructions)
 */

#ifndef XBS_BENCH_BENCH_UTIL_HH
#define XBS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/catalog.hh"

namespace xbs
{

/**
 * When XBS_CSV_DIR is set, also write @p table as
 * $XBS_CSV_DIR/<name>.csv so results can be post-processed.
 */
inline void
maybeWriteCsv(const std::string &name, const TextTable &table)
{
    const char *dir = std::getenv("XBS_CSV_DIR");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return;
    }
    out << table.csv();
    std::printf("(csv written to %s)\n", path.c_str());
}

inline void
benchHeader(const char *experiment_id, const char *paper_artifact,
            const char *paper_claim)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s - reproduces %s\n", experiment_id, paper_artifact);
    std::printf("paper: %s\n", paper_claim);
    std::printf("trace length: %llu instructions x 21 workloads\n",
                (unsigned long long)defaultTraceLength());
    std::printf("================================================="
                "=============\n\n");
}

/** Per-suite and overall mean of a labeled result field. */
inline void
printSuiteMeans(const std::vector<RunResult> &results,
                const std::vector<std::string> &labels,
                double (*field)(const std::vector<RunResult> &,
                                const std::string &,
                                const std::string &),
                const char *field_name, bool as_percent)
{
    std::vector<std::string> headers = {"suite"};
    for (const auto &l : labels)
        headers.push_back(l);
    TextTable t(headers);
    auto fmt = [&](double v) {
        return as_percent ? TextTable::pct(v) : TextTable::num(v);
    };
    for (const auto &suite : suiteNames()) {
        std::vector<std::string> row = {suite};
        for (const auto &l : labels)
            row.push_back(fmt(field(results, l, suite)));
        t.addRow(row);
    }
    std::vector<std::string> all = {"ALL"};
    for (const auto &l : labels)
        all.push_back(fmt(field(results, l, "")));
    t.addRow(all);
    std::printf("%s by suite:\n%s\n", field_name, t.render().c_str());
}

inline double
meanMissRateWrapper(const std::vector<RunResult> &r,
                    const std::string &l, const std::string &s)
{
    return SuiteRunner::meanMissRate(r, l, s);
}

inline double
meanBandwidthWrapper(const std::vector<RunResult> &r,
                     const std::string &l, const std::string &s)
{
    return SuiteRunner::meanBandwidth(r, l, s);
}

} // namespace xbs

#endif // XBS_BENCH_BENCH_UTIL_HH
