/**
 * @file
 * WARMUP - methodology check for the scaled-trace substitution: the
 * paper used 30M-instruction traces; ours default to 2M. This bench
 * sweeps the trace length and shows the XBC-vs-TC comparison is
 * stable once the structures are warm (the absolute miss rates keep
 * drifting down slowly as cold misses amortize, but the *relative*
 * ordering and reduction stabilize well before 2M instructions).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    std::printf("WARMUP - trace-length sensitivity of the Figure 9 "
                "comparison (32K uops)\n\n");

    // A representative subset keeps the longest point affordable.
    const std::vector<std::string> sample = {
        "gcc", "compress", "vortex", "word", "netscape", "quake2",
    };
    const std::vector<uint64_t> lengths = {250000, 500000, 1000000,
                                           2000000};

    TextTable t({"instructions", "TC miss", "XBC miss", "reduction"});
    for (uint64_t len : lengths) {
        SuiteRunner runner(len, sample);
        auto results = runner.sweep({
            {"TC", SimConfig::tcBaseline(32768)},
            {"XBC", SimConfig::xbcBaseline(32768)},
        });
        double tc = SuiteRunner::meanMissRate(results, "TC");
        double xbc = SuiteRunner::meanMissRate(results, "XBC");
        t.addRow({std::to_string(len), TextTable::pct(tc),
                  TextTable::pct(xbc),
                  TextTable::pct(tc > 0 ? 1.0 - xbc / tc : 0.0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("reading: the reduction column should be flat-ish "
                "from ~1M instructions on,\nvalidating the 2M-"
                "instruction default against the paper's 30M.\n");
    return 0;
}
