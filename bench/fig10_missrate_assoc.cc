/**
 * @file
 * FIG10 - reproduces Figure 10: miss rate versus associativity for
 * both structures at 32K uops.
 *
 * Paper claims: moving from direct-mapped to 2-way reduces misses by
 * about 60%; going to 4-way helps less ("the well-known curve").
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("FIG10", "Figure 10 (miss rate vs associativity)",
                "DM -> 2-way cuts misses ~60%; 4-way helps less");

    SuiteRunner runner;
    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"XBC-1w", SimConfig::xbcBaseline(32768, 1)},
        {"XBC-2w", SimConfig::xbcBaseline(32768, 2)},
        {"XBC-4w", SimConfig::xbcBaseline(32768, 4)},
        {"TC-1w", SimConfig::tcBaseline(32768, 1)},
        {"TC-2w", SimConfig::tcBaseline(32768, 2)},
        {"TC-4w", SimConfig::tcBaseline(32768, 4)},
    };
    auto results = runner.sweep(configs);

    TextTable t({"ways", "XBC miss", "TC miss"});
    for (const char *w : {"1w", "2w", "4w"}) {
        t.addRow({w,
                  TextTable::pct(SuiteRunner::meanMissRate(
                      results, std::string("XBC-") + w)),
                  TextTable::pct(SuiteRunner::meanMissRate(
                      results, std::string("TC-") + w))});
    }
    std::printf("miss rate vs associativity (32K uops, mean over 21 "
                "traces):\n%s\n",
                t.render().c_str());

    auto reduction = [&](const char *a, const char *b) {
        double ma = SuiteRunner::meanMissRate(results, a);
        double mb = SuiteRunner::meanMissRate(results, b);
        return ma > 0 ? 100.0 * (1.0 - mb / ma) : 0.0;
    };
    std::printf("XBC: DM->2way %.1f%% fewer misses (paper ~60%%), "
                "2way->4way %.1f%% (paper: smaller)\n",
                reduction("XBC-1w", "XBC-2w"),
                reduction("XBC-2w", "XBC-4w"));
    std::printf("TC:  DM->2way %.1f%% fewer misses, 2way->4way "
                "%.1f%%\n",
                reduction("TC-1w", "TC-2w"),
                reduction("TC-2w", "TC-4w"));

    printSuiteMeans(results, {"XBC-1w", "XBC-2w", "XBC-4w"},
                    meanMissRateWrapper, "XBC miss rate", true);
    return 0;
}
