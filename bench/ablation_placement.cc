/**
 * @file
 * AB-PLACE - ablation of the placement policies (paper section 3.10):
 * smart build-mode placement and dynamic delivery-mode re-placement,
 * in all four combinations.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-PLACE",
                "section 3.10 ablation (placement policies)",
                "conflict-aware placement recovers bandwidth lost to "
                "bank conflicts");

    auto config = [](bool smart, bool dynamic) {
        SimConfig c = SimConfig::xbcBaseline();
        c.xbc.smartBuildPlacement = smart;
        c.xbc.dynamicPlacement = dynamic;
        return c;
    };

    SuiteRunner runner;
    auto results = runner.sweep({
        {"none", config(false, false)},
        {"smart", config(true, false)},
        {"dynamic", config(false, true)},
        {"both", config(true, true)},
    });

    TextTable t({"policy", "bandwidth", "miss", "conflict defers"});
    for (const char *l : {"none", "smart", "dynamic", "both"}) {
        uint64_t defers = 0;
        for (const auto &r : results) {
            if (r.label == l)
                defers += r.bankConflictDefers;
        }
        t.addRow({l,
                  TextTable::num(SuiteRunner::meanBandwidth(results,
                                                            l), 3),
                  TextTable::pct(SuiteRunner::meanMissRate(results,
                                                           l)),
                  std::to_string(defers)});
    }
    std::printf("%s\n", t.render().c_str());
    return 0;
}
