/**
 * @file
 * AB-FETCH - ablation of the fetch machinery: the number of XB
 * pointers the XBTB provides per cycle (paper section 3.1: n
 * predictions -> n XBs per cycle) and the set-search mechanism
 * (section 3.9).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace xbs;

int
main()
{
    benchHeader("AB-FETCH",
                "sections 3.1/3.9 ablation (XBs per cycle, set "
                "search)",
                "2 XBs/cycle matches the TC's 16-uop traces; set "
                "search avoids build switches");

    auto config = [](unsigned xbs_per_cycle, bool set_search) {
        SimConfig c = SimConfig::xbcBaseline();
        c.xbc.fetchXbsPerCycle = xbs_per_cycle;
        c.xbc.setSearchEnabled = set_search;
        return c;
    };

    SuiteRunner runner;
    auto results = runner.sweep({
        {"1xb", config(1, true)},
        {"2xb", config(2, true)},
        {"3xb", config(3, true)},
        {"2xb-nosearch", config(2, false)},
    });

    TextTable t({"config", "bandwidth", "miss rate",
                 "set-search hits"});
    for (const char *l : {"1xb", "2xb", "3xb", "2xb-nosearch"}) {
        uint64_t hits = 0;
        for (const auto &r : results) {
            if (r.label == l)
                hits += r.setSearchHits;
        }
        t.addRow({l,
                  TextTable::num(SuiteRunner::meanBandwidth(results,
                                                            l)),
                  TextTable::pct(SuiteRunner::meanMissRate(results,
                                                           l)),
                  std::to_string(hits)});
    }
    std::printf("%s\n", t.render().c_str());

    printSuiteMeans(results, {"1xb", "2xb", "3xb"},
                    meanBandwidthWrapper, "bandwidth", false);
    return 0;
}
