file(REMOVE_RECURSE
  "../bench/ablation_xbtb"
  "../bench/ablation_xbtb.pdb"
  "CMakeFiles/ablation_xbtb.dir/ablation_xbtb.cc.o"
  "CMakeFiles/ablation_xbtb.dir/ablation_xbtb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xbtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
