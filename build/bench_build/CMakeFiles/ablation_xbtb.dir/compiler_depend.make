# Empty compiler generated dependencies file for ablation_xbtb.
# This may be replaced when dependencies are built.
