# Empty compiler generated dependencies file for warmup_sensitivity.
# This may be replaced when dependencies are built.
