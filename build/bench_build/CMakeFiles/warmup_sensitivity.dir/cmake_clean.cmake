file(REMOVE_RECURSE
  "../bench/warmup_sensitivity"
  "../bench/warmup_sensitivity.pdb"
  "CMakeFiles/warmup_sensitivity.dir/warmup_sensitivity.cc.o"
  "CMakeFiles/warmup_sensitivity.dir/warmup_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
