file(REMOVE_RECURSE
  "../bench/ablation_promotion"
  "../bench/ablation_promotion.pdb"
  "CMakeFiles/ablation_promotion.dir/ablation_promotion.cc.o"
  "CMakeFiles/ablation_promotion.dir/ablation_promotion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
