
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/phase_breakdown.cc" "bench_build/CMakeFiles/phase_breakdown.dir/phase_breakdown.cc.o" "gcc" "bench_build/CMakeFiles/phase_breakdown.dir/phase_breakdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/xbs_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/bbtc/CMakeFiles/xbs_bbtc.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/xbs_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/ic/CMakeFiles/xbs_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/xbs_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
