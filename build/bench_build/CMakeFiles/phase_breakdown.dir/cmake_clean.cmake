file(REMOVE_RECURSE
  "../bench/phase_breakdown"
  "../bench/phase_breakdown.pdb"
  "CMakeFiles/phase_breakdown.dir/phase_breakdown.cc.o"
  "CMakeFiles/phase_breakdown.dir/phase_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
