# Empty compiler generated dependencies file for ablation_complex.
# This may be replaced when dependencies are built.
