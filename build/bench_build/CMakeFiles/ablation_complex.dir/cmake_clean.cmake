file(REMOVE_RECURSE
  "../bench/ablation_complex"
  "../bench/ablation_complex.pdb"
  "CMakeFiles/ablation_complex.dir/ablation_complex.cc.o"
  "CMakeFiles/ablation_complex.dir/ablation_complex.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
