file(REMOVE_RECURSE
  "../bench/fig10_missrate_assoc"
  "../bench/fig10_missrate_assoc.pdb"
  "CMakeFiles/fig10_missrate_assoc.dir/fig10_missrate_assoc.cc.o"
  "CMakeFiles/fig10_missrate_assoc.dir/fig10_missrate_assoc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_missrate_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
