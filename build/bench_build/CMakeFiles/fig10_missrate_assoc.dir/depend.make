# Empty dependencies file for fig10_missrate_assoc.
# This may be replaced when dependencies are built.
