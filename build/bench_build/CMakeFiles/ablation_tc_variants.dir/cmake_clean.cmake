file(REMOVE_RECURSE
  "../bench/ablation_tc_variants"
  "../bench/ablation_tc_variants.pdb"
  "CMakeFiles/ablation_tc_variants.dir/ablation_tc_variants.cc.o"
  "CMakeFiles/ablation_tc_variants.dir/ablation_tc_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tc_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
