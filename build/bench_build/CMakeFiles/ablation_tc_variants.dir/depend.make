# Empty dependencies file for ablation_tc_variants.
# This may be replaced when dependencies are built.
