file(REMOVE_RECURSE
  "../bench/survey_frontends"
  "../bench/survey_frontends.pdb"
  "CMakeFiles/survey_frontends.dir/survey_frontends.cc.o"
  "CMakeFiles/survey_frontends.dir/survey_frontends.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
