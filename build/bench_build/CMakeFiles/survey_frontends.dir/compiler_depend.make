# Empty compiler generated dependencies file for survey_frontends.
# This may be replaced when dependencies are built.
