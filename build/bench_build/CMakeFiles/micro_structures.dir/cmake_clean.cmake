file(REMOVE_RECURSE
  "../bench/micro_structures"
  "../bench/micro_structures.pdb"
  "CMakeFiles/micro_structures.dir/micro_structures.cc.o"
  "CMakeFiles/micro_structures.dir/micro_structures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
