# Empty compiler generated dependencies file for ablation_fetch.
# This may be replaced when dependencies are built.
