file(REMOVE_RECURSE
  "../bench/ablation_fetch"
  "../bench/ablation_fetch.pdb"
  "CMakeFiles/ablation_fetch.dir/ablation_fetch.cc.o"
  "CMakeFiles/ablation_fetch.dir/ablation_fetch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
