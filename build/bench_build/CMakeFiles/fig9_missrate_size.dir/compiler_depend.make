# Empty compiler generated dependencies file for fig9_missrate_size.
# This may be replaced when dependencies are built.
