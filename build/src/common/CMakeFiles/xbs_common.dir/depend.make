# Empty dependencies file for xbs_common.
# This may be replaced when dependencies are built.
