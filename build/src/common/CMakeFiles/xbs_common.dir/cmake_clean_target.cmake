file(REMOVE_RECURSE
  "libxbs_common.a"
)
