file(REMOVE_RECURSE
  "CMakeFiles/xbs_common.dir/args.cc.o"
  "CMakeFiles/xbs_common.dir/args.cc.o.d"
  "CMakeFiles/xbs_common.dir/histogram.cc.o"
  "CMakeFiles/xbs_common.dir/histogram.cc.o.d"
  "CMakeFiles/xbs_common.dir/json.cc.o"
  "CMakeFiles/xbs_common.dir/json.cc.o.d"
  "CMakeFiles/xbs_common.dir/logging.cc.o"
  "CMakeFiles/xbs_common.dir/logging.cc.o.d"
  "CMakeFiles/xbs_common.dir/random.cc.o"
  "CMakeFiles/xbs_common.dir/random.cc.o.d"
  "CMakeFiles/xbs_common.dir/stats.cc.o"
  "CMakeFiles/xbs_common.dir/stats.cc.o.d"
  "CMakeFiles/xbs_common.dir/table.cc.o"
  "CMakeFiles/xbs_common.dir/table.cc.o.d"
  "libxbs_common.a"
  "libxbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
