file(REMOVE_RECURSE
  "CMakeFiles/xbs_sim.dir/config.cc.o"
  "CMakeFiles/xbs_sim.dir/config.cc.o.d"
  "CMakeFiles/xbs_sim.dir/runner.cc.o"
  "CMakeFiles/xbs_sim.dir/runner.cc.o.d"
  "libxbs_sim.a"
  "libxbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
