# Empty compiler generated dependencies file for xbs_sim.
# This may be replaced when dependencies are built.
