file(REMOVE_RECURSE
  "libxbs_sim.a"
)
