# Empty dependencies file for xbs_bbtc.
# This may be replaced when dependencies are built.
