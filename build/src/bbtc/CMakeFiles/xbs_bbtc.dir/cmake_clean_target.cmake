file(REMOVE_RECURSE
  "libxbs_bbtc.a"
)
