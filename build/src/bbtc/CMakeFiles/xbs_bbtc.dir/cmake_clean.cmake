file(REMOVE_RECURSE
  "CMakeFiles/xbs_bbtc.dir/bbtc_frontend.cc.o"
  "CMakeFiles/xbs_bbtc.dir/bbtc_frontend.cc.o.d"
  "CMakeFiles/xbs_bbtc.dir/block_cache.cc.o"
  "CMakeFiles/xbs_bbtc.dir/block_cache.cc.o.d"
  "libxbs_bbtc.a"
  "libxbs_bbtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_bbtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
