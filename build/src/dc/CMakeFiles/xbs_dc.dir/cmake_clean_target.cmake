file(REMOVE_RECURSE
  "libxbs_dc.a"
)
