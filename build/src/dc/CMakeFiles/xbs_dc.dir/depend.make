# Empty dependencies file for xbs_dc.
# This may be replaced when dependencies are built.
