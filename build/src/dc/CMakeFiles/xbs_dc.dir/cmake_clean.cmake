file(REMOVE_RECURSE
  "CMakeFiles/xbs_dc.dir/dc_frontend.cc.o"
  "CMakeFiles/xbs_dc.dir/dc_frontend.cc.o.d"
  "CMakeFiles/xbs_dc.dir/decoded_cache.cc.o"
  "CMakeFiles/xbs_dc.dir/decoded_cache.cc.o.d"
  "libxbs_dc.a"
  "libxbs_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
