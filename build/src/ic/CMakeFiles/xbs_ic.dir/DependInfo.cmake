
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ic/ic_frontend.cc" "src/ic/CMakeFiles/xbs_ic.dir/ic_frontend.cc.o" "gcc" "src/ic/CMakeFiles/xbs_ic.dir/ic_frontend.cc.o.d"
  "/root/repo/src/ic/inst_cache.cc" "src/ic/CMakeFiles/xbs_ic.dir/inst_cache.cc.o" "gcc" "src/ic/CMakeFiles/xbs_ic.dir/inst_cache.cc.o.d"
  "/root/repo/src/ic/legacy_pipe.cc" "src/ic/CMakeFiles/xbs_ic.dir/legacy_pipe.cc.o" "gcc" "src/ic/CMakeFiles/xbs_ic.dir/legacy_pipe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bpred/CMakeFiles/xbs_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
