file(REMOVE_RECURSE
  "CMakeFiles/xbs_ic.dir/ic_frontend.cc.o"
  "CMakeFiles/xbs_ic.dir/ic_frontend.cc.o.d"
  "CMakeFiles/xbs_ic.dir/inst_cache.cc.o"
  "CMakeFiles/xbs_ic.dir/inst_cache.cc.o.d"
  "CMakeFiles/xbs_ic.dir/legacy_pipe.cc.o"
  "CMakeFiles/xbs_ic.dir/legacy_pipe.cc.o.d"
  "libxbs_ic.a"
  "libxbs_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
