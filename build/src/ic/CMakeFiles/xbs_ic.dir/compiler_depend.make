# Empty compiler generated dependencies file for xbs_ic.
# This may be replaced when dependencies are built.
