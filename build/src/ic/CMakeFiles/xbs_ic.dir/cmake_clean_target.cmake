file(REMOVE_RECURSE
  "libxbs_ic.a"
)
