# Empty compiler generated dependencies file for xbs_workload.
# This may be replaced when dependencies are built.
