file(REMOVE_RECURSE
  "libxbs_workload.a"
)
