
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/xbs_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/xbs_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/xbs_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/xbs_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/cfg.cc" "src/workload/CMakeFiles/xbs_workload.dir/cfg.cc.o" "gcc" "src/workload/CMakeFiles/xbs_workload.dir/cfg.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/workload/CMakeFiles/xbs_workload.dir/executor.cc.o" "gcc" "src/workload/CMakeFiles/xbs_workload.dir/executor.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/xbs_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/xbs_workload.dir/profile.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/xbs_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/xbs_workload.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/xbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
