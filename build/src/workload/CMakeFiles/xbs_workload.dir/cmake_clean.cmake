file(REMOVE_RECURSE
  "CMakeFiles/xbs_workload.dir/builder.cc.o"
  "CMakeFiles/xbs_workload.dir/builder.cc.o.d"
  "CMakeFiles/xbs_workload.dir/catalog.cc.o"
  "CMakeFiles/xbs_workload.dir/catalog.cc.o.d"
  "CMakeFiles/xbs_workload.dir/cfg.cc.o"
  "CMakeFiles/xbs_workload.dir/cfg.cc.o.d"
  "CMakeFiles/xbs_workload.dir/executor.cc.o"
  "CMakeFiles/xbs_workload.dir/executor.cc.o.d"
  "CMakeFiles/xbs_workload.dir/profile.cc.o"
  "CMakeFiles/xbs_workload.dir/profile.cc.o.d"
  "CMakeFiles/xbs_workload.dir/program.cc.o"
  "CMakeFiles/xbs_workload.dir/program.cc.o.d"
  "libxbs_workload.a"
  "libxbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
