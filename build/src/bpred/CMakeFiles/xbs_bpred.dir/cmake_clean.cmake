file(REMOVE_RECURSE
  "CMakeFiles/xbs_bpred.dir/btb.cc.o"
  "CMakeFiles/xbs_bpred.dir/btb.cc.o.d"
  "CMakeFiles/xbs_bpred.dir/direction.cc.o"
  "CMakeFiles/xbs_bpred.dir/direction.cc.o.d"
  "libxbs_bpred.a"
  "libxbs_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
