file(REMOVE_RECURSE
  "libxbs_bpred.a"
)
