# Empty compiler generated dependencies file for xbs_bpred.
# This may be replaced when dependencies are built.
