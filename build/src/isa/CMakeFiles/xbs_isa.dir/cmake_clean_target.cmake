file(REMOVE_RECURSE
  "libxbs_isa.a"
)
