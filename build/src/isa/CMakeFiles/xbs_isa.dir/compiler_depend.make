# Empty compiler generated dependencies file for xbs_isa.
# This may be replaced when dependencies are built.
