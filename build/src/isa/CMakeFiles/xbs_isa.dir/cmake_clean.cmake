file(REMOVE_RECURSE
  "CMakeFiles/xbs_isa.dir/static_inst.cc.o"
  "CMakeFiles/xbs_isa.dir/static_inst.cc.o.d"
  "CMakeFiles/xbs_isa.dir/types.cc.o"
  "CMakeFiles/xbs_isa.dir/types.cc.o.d"
  "CMakeFiles/xbs_isa.dir/uop.cc.o"
  "CMakeFiles/xbs_isa.dir/uop.cc.o.d"
  "libxbs_isa.a"
  "libxbs_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
