file(REMOVE_RECURSE
  "libxbs_trace.a"
)
