file(REMOVE_RECURSE
  "CMakeFiles/xbs_trace.dir/trace.cc.o"
  "CMakeFiles/xbs_trace.dir/trace.cc.o.d"
  "CMakeFiles/xbs_trace.dir/trace_io.cc.o"
  "CMakeFiles/xbs_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/xbs_trace.dir/trace_stats.cc.o"
  "CMakeFiles/xbs_trace.dir/trace_stats.cc.o.d"
  "libxbs_trace.a"
  "libxbs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
