# Empty compiler generated dependencies file for xbs_trace.
# This may be replaced when dependencies are built.
