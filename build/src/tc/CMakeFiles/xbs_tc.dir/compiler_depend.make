# Empty compiler generated dependencies file for xbs_tc.
# This may be replaced when dependencies are built.
