file(REMOVE_RECURSE
  "libxbs_tc.a"
)
