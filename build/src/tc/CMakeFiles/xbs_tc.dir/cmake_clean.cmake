file(REMOVE_RECURSE
  "CMakeFiles/xbs_tc.dir/fill_unit.cc.o"
  "CMakeFiles/xbs_tc.dir/fill_unit.cc.o.d"
  "CMakeFiles/xbs_tc.dir/tc_frontend.cc.o"
  "CMakeFiles/xbs_tc.dir/tc_frontend.cc.o.d"
  "CMakeFiles/xbs_tc.dir/trace_cache.cc.o"
  "CMakeFiles/xbs_tc.dir/trace_cache.cc.o.d"
  "libxbs_tc.a"
  "libxbs_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
