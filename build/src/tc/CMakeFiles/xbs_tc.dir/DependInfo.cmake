
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tc/fill_unit.cc" "src/tc/CMakeFiles/xbs_tc.dir/fill_unit.cc.o" "gcc" "src/tc/CMakeFiles/xbs_tc.dir/fill_unit.cc.o.d"
  "/root/repo/src/tc/tc_frontend.cc" "src/tc/CMakeFiles/xbs_tc.dir/tc_frontend.cc.o" "gcc" "src/tc/CMakeFiles/xbs_tc.dir/tc_frontend.cc.o.d"
  "/root/repo/src/tc/trace_cache.cc" "src/tc/CMakeFiles/xbs_tc.dir/trace_cache.cc.o" "gcc" "src/tc/CMakeFiles/xbs_tc.dir/trace_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ic/CMakeFiles/xbs_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/xbs_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
