
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_array.cc" "src/core/CMakeFiles/xbs_core.dir/data_array.cc.o" "gcc" "src/core/CMakeFiles/xbs_core.dir/data_array.cc.o.d"
  "/root/repo/src/core/fill_unit.cc" "src/core/CMakeFiles/xbs_core.dir/fill_unit.cc.o" "gcc" "src/core/CMakeFiles/xbs_core.dir/fill_unit.cc.o.d"
  "/root/repo/src/core/out_mux.cc" "src/core/CMakeFiles/xbs_core.dir/out_mux.cc.o" "gcc" "src/core/CMakeFiles/xbs_core.dir/out_mux.cc.o.d"
  "/root/repo/src/core/priority_encoder.cc" "src/core/CMakeFiles/xbs_core.dir/priority_encoder.cc.o" "gcc" "src/core/CMakeFiles/xbs_core.dir/priority_encoder.cc.o.d"
  "/root/repo/src/core/xbc_frontend.cc" "src/core/CMakeFiles/xbs_core.dir/xbc_frontend.cc.o" "gcc" "src/core/CMakeFiles/xbs_core.dir/xbc_frontend.cc.o.d"
  "/root/repo/src/core/xbtb.cc" "src/core/CMakeFiles/xbs_core.dir/xbtb.cc.o" "gcc" "src/core/CMakeFiles/xbs_core.dir/xbtb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ic/CMakeFiles/xbs_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/xbs_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
