# Empty dependencies file for xbs_core.
# This may be replaced when dependencies are built.
