file(REMOVE_RECURSE
  "CMakeFiles/xbs_core.dir/data_array.cc.o"
  "CMakeFiles/xbs_core.dir/data_array.cc.o.d"
  "CMakeFiles/xbs_core.dir/fill_unit.cc.o"
  "CMakeFiles/xbs_core.dir/fill_unit.cc.o.d"
  "CMakeFiles/xbs_core.dir/out_mux.cc.o"
  "CMakeFiles/xbs_core.dir/out_mux.cc.o.d"
  "CMakeFiles/xbs_core.dir/priority_encoder.cc.o"
  "CMakeFiles/xbs_core.dir/priority_encoder.cc.o.d"
  "CMakeFiles/xbs_core.dir/xbc_frontend.cc.o"
  "CMakeFiles/xbs_core.dir/xbc_frontend.cc.o.d"
  "CMakeFiles/xbs_core.dir/xbtb.cc.o"
  "CMakeFiles/xbs_core.dir/xbtb.cc.o.d"
  "libxbs_core.a"
  "libxbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
