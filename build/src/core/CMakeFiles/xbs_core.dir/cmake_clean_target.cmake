file(REMOVE_RECURSE
  "libxbs_core.a"
)
