file(REMOVE_RECURSE
  "CMakeFiles/compare_frontends.dir/compare_frontends.cpp.o"
  "CMakeFiles/compare_frontends.dir/compare_frontends.cpp.o.d"
  "compare_frontends"
  "compare_frontends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
