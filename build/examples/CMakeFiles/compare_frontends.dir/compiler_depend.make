# Empty compiler generated dependencies file for compare_frontends.
# This may be replaced when dependencies are built.
