
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/xbtrace.cc" "tools/CMakeFiles/xbtrace.dir/xbtrace.cc.o" "gcc" "tools/CMakeFiles/xbtrace.dir/xbtrace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/xbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
