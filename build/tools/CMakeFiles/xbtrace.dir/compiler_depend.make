# Empty compiler generated dependencies file for xbtrace.
# This may be replaced when dependencies are built.
