file(REMOVE_RECURSE
  "CMakeFiles/xbtrace.dir/xbtrace.cc.o"
  "CMakeFiles/xbtrace.dir/xbtrace.cc.o.d"
  "xbtrace"
  "xbtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
