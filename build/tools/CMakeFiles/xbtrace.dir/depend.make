# Empty dependencies file for xbtrace.
# This may be replaced when dependencies are built.
