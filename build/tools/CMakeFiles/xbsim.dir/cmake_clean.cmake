file(REMOVE_RECURSE
  "CMakeFiles/xbsim.dir/xbsim.cc.o"
  "CMakeFiles/xbsim.dir/xbsim.cc.o.d"
  "xbsim"
  "xbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
