# Empty dependencies file for xbsim.
# This may be replaced when dependencies are built.
