file(REMOVE_RECURSE
  "CMakeFiles/test_bbtc.dir/test_bbtc.cc.o"
  "CMakeFiles/test_bbtc.dir/test_bbtc.cc.o.d"
  "test_bbtc"
  "test_bbtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bbtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
