# Empty compiler generated dependencies file for test_bbtc.
# This may be replaced when dependencies are built.
