# Empty compiler generated dependencies file for test_xbc_frontend.
# This may be replaced when dependencies are built.
