file(REMOVE_RECURSE
  "CMakeFiles/test_xbc_frontend.dir/test_xbc_frontend.cc.o"
  "CMakeFiles/test_xbc_frontend.dir/test_xbc_frontend.cc.o.d"
  "test_xbc_frontend"
  "test_xbc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
