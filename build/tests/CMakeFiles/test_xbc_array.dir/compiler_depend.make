# Empty compiler generated dependencies file for test_xbc_array.
# This may be replaced when dependencies are built.
