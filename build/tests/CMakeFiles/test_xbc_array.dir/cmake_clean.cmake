file(REMOVE_RECURSE
  "CMakeFiles/test_xbc_array.dir/test_xbc_array.cc.o"
  "CMakeFiles/test_xbc_array.dir/test_xbc_array.cc.o.d"
  "test_xbc_array"
  "test_xbc_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbc_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
