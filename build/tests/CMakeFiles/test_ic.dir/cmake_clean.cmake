file(REMOVE_RECURSE
  "CMakeFiles/test_ic.dir/test_ic.cc.o"
  "CMakeFiles/test_ic.dir/test_ic.cc.o.d"
  "test_ic"
  "test_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
