# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tools "/root/repo/build/tests/test_tools")
set_tests_properties(test_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bpred "/root/repo/build/tests/test_bpred")
set_tests_properties(test_bpred PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ic "/root/repo/build/tests/test_ic")
set_tests_properties(test_ic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dc "/root/repo/build/tests/test_dc")
set_tests_properties(test_dc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bbtc "/root/repo/build/tests/test_bbtc")
set_tests_properties(test_bbtc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tc "/root/repo/build/tests/test_tc")
set_tests_properties(test_tc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_xbc_array "/root/repo/build/tests/test_xbc_array")
set_tests_properties(test_xbc_array PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_xbc_frontend "/root/repo/build/tests/test_xbc_frontend")
set_tests_properties(test_xbc_frontend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;xbs_test;/root/repo/tests/CMakeLists.txt;0;")
