/**
 * @file
 * Quickstart: generate a synthetic workload, run the XBC frontend
 * over it, and print the headline metrics plus the structure's own
 * statistics. Start here to see the public API end to end.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "core/xbc_frontend.hh"
#include "workload/catalog.hh"

using namespace xbs;

int
main()
{
    // 1. Pick a workload from the catalog (the "gcc"-like trace of
    //    the SPECint95-like suite) and produce a dynamic trace.
    Trace trace = makeCatalogTrace("gcc", 500000);
    std::printf("trace '%s': %zu instructions, %llu uops\n",
                trace.name().c_str(), trace.numRecords(),
                (unsigned long long)trace.totalUops());

    // 2. Configure the frontend. FrontendParams covers the shared
    //    pipeline (renamer width, penalties, legacy IC path);
    //    XbcParams covers the XBC itself (paper defaults: 32K uops,
    //    4 banks x 2 ways, 8K-entry XBTB, promotion enabled).
    FrontendParams fp;
    XbcParams xp;

    // 3. Run.
    XbcFrontend xbc(fp, xp);
    xbc.run(trace);

    // 4. Headline metrics.
    const auto &m = xbc.metrics();
    std::printf("\nXBC results:\n");
    std::printf("  uop bandwidth (delivery): %.2f uops/cycle\n",
                m.bandwidth());
    std::printf("  uop miss rate:            %.2f%% of uops from "
                "the IC path\n",
                100.0 * m.missRate());
    std::printf("  overall throughput:       %.2f uops/cycle\n",
                m.overallIpc());
    std::printf("  cond. mispredict rate:    %.2f%%\n",
                100.0 * m.condMispredictRate());
    std::printf("  redundancy:               %.3f copies per "
                "resident uop\n",
                xbc.dataArray().redundancy());
    std::printf("  promotions performed:     %llu\n",
                (unsigned long long)xbc.promotions.value());

    // 5. The full statistics tree, gem5 style.
    std::printf("\nfull statistics dump:\n");
    xbc.statRoot().dump(std::cout);
    return 0;
}
