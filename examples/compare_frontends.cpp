/**
 * @file
 * Compare the three instruction-supply mechanisms of the paper (IC,
 * TC, XBC) over a suite of workloads: bandwidth, miss rate, and
 * redundancy side by side. This is the paper's core comparison as a
 * library user would run it.
 *
 *   $ ./build/examples/compare_frontends
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace xbs;

int
main()
{
    // One workload from each suite keeps this example snappy; use
    // the bench binaries for the full 21-trace evaluation.
    SuiteRunner runner(400000, {"vortex", "word", "quake2"});

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"IC", SimConfig::icBaseline()},
        {"TC", SimConfig::tcBaseline(32768)},
        {"XBC", SimConfig::xbcBaseline(32768)},
    };

    TextTable t({"workload", "frontend", "bandwidth", "miss rate",
                 "redundancy", "cond MR", "cycles"});
    auto results = runner.sweep(configs, [](const RunResult &r) {
        std::printf("  finished %-8s / %-3s\n", r.workload.c_str(),
                    r.label.c_str());
    });

    for (const auto &r : results) {
        t.addRow({r.workload, r.label, TextTable::num(r.bandwidth),
                  r.label == "IC" ? std::string("-")
                                  : TextTable::pct(r.missRate),
                  r.label == "IC" ? std::string("-")
                                  : TextTable::num(r.redundancy, 2),
                  TextTable::pct(r.condMispredictRate),
                  std::to_string(r.cycles)});
    }
    std::printf("\n%s\n", t.render().c_str());

    std::printf("reading the table:\n"
                " - the IC tops out near 4 uops/cycle (decode-"
                "limited, one fetch block per cycle);\n"
                " - the TC and the XBC both approach the 8-wide "
                "renamer in delivery mode;\n"
                " - the XBC misses less because it stores each uop "
                "(nearly) once, while the\n"
                "   TC's redundancy burns capacity.\n");
    return 0;
}
