/**
 * @file
 * Inspect a synthetic trace: block-length statistics (the Figure 1
 * machinery), control-flow mix, branch bias population, and a
 * round-trip through the binary trace format.
 *
 *   $ ./build/examples/trace_inspector [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/table.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workload/catalog.hh"

using namespace xbs;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "perl";
    uint64_t len = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                            : 300000;

    Trace trace = makeCatalogTrace(name, len);
    trace.validate();
    std::printf("trace '%s': %zu instructions, %llu uops "
                "(%.2f uops/inst)\n\n",
                trace.name().c_str(), trace.numRecords(),
                (unsigned long long)trace.totalUops(),
                (double)trace.totalUops() / trace.numRecords());

    // Control-flow class mix.
    std::map<InstClass, uint64_t> mix;
    uint64_t taken = 0, cond = 0;
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        mix[trace.inst(i).cls] += 1;
        if (trace.inst(i).cls == InstClass::CondBranch) {
            ++cond;
            taken += trace.record(i).taken;
        }
    }
    TextTable mixT({"class", "count", "share"});
    for (const auto &[cls, count] : mix) {
        mixT.addRow({instClassName(cls), std::to_string(count),
                     TextTable::pct((double)count /
                                    trace.numRecords())});
    }
    std::printf("instruction mix:\n%s\n", mixT.render().c_str());
    std::printf("conditional branches taken: %.1f%%\n\n",
                cond ? 100.0 * taken / cond : 0.0);

    // Branch bias population: how many branches are promotable?
    BranchBiasTable bias = computeBranchBias(trace);
    uint64_t monotonic = 0, branches = 0;
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        if (trace.inst(i).cls != InstClass::CondBranch)
            continue;
        // Count each static branch once, at its first occurrence.
        bool first = true;
        for (std::size_t j = 0; j < i; ++j) {
            if (trace.record(j).staticIdx == trace.record(i).staticIdx) {
                first = false;
                break;
            }
        }
        if (!first)
            continue;
        ++branches;
        if (bias.monotonic(trace.record(i).staticIdx, 0.992))
            ++monotonic;
    }
    std::printf("static conditional branches: %llu, of which "
                "%.1f%% are >=99.2%% biased (promotable)\n\n",
                (unsigned long long)branches,
                branches ? 100.0 * monotonic / branches : 0.0);

    // Figure 1 statistics for this trace.
    auto s = computeBlockLengthStats(trace);
    TextTable lenT({"block type", "mean uops"});
    lenT.addRow({"basic block", TextTable::num(s.basicBlock.mean())});
    lenT.addRow({"extended block", TextTable::num(s.xb.mean())});
    lenT.addRow({"XB w/ promotion",
                 TextTable::num(s.xbPromoted.mean())});
    lenT.addRow({"dual XB", TextTable::num(s.dualXb.mean())});
    std::printf("block lengths (16-uop cap):\n%s\n",
                lenT.render().c_str());
    std::printf("%s\n", s.xb.render("XB length histogram").c_str());

    // Round-trip through the binary format.
    std::string path = "/tmp/xbs_inspector_roundtrip.xbt";
    writeTrace(trace, path);
    Trace replay = readTrace(path);
    std::remove(path.c_str());
    std::printf("binary round-trip: %zu records re-read OK\n",
                replay.numRecords());
    return 0;
}
