/**
 * @file
 * Build a control-flow graph by hand with the CfgProgram API, run it,
 * and watch the XBC's build algorithm at work: the program below is
 * the paper's section 3.3 example, where two prefixes (A and B) fall
 * into the same suffix (CD), producing case-1/2/3 stores and a
 * complex XB.
 *
 *   $ ./build/examples/custom_workload
 */

#include <cstdio>

#include "core/xbc_frontend.hh"
#include "workload/cfg.hh"
#include "workload/executor.hh"

using namespace xbs;

int
main()
{
    CfgProgram cfg("paper-example");
    int f = cfg.addFunction("main");
    auto &fn = cfg.function(f);

    // dispatch: an alternating branch picks prefix A or prefix B.
    int dispatch = fn.addBlock();
    fn.blocks[dispatch].body.push_back({4, 1});
    CondBehavior alternating;
    alternating.kind = CondBehavior::Kind::Pattern;
    alternating.patternLen = 2;
    alternating.patternBits = 0b01;  // A, B, A, B, ...
    fn.blocks[dispatch].term.kind = TermKind::CondBranch;
    fn.blocks[dispatch].term.cond = alternating;

    // Prefix B falls through into the suffix.
    int prefix_b = fn.addBlock();
    fn.blocks[prefix_b].body.push_back({4, 2});
    fn.blocks[prefix_b].body.push_back({4, 2});

    // The shared suffix CD, ending on the loop latch.
    int suffix = fn.addBlock();
    fn.blocks[suffix].body.push_back({4, 2});
    fn.blocks[suffix].body.push_back({4, 2});
    CondBehavior loop;
    loop.kind = CondBehavior::Kind::Loop;
    loop.tripCount = 1u << 30;
    fn.blocks[suffix].term.kind = TermKind::CondBranch;
    fn.blocks[suffix].term.targetBlock = dispatch;
    fn.blocks[suffix].term.cond = loop;

    // Prefix A jumps into the suffix.
    int prefix_a = fn.addBlock();
    fn.blocks[prefix_a].body.push_back({4, 2});
    fn.blocks[prefix_a].body.push_back({4, 2});
    fn.blocks[prefix_a].term.kind = TermKind::Jump;
    fn.blocks[prefix_a].term.targetBlock = suffix;

    int exit_blk = fn.addBlock();
    fn.blocks[exit_blk].term.kind = TermKind::Return;

    // Taken -> prefix A; fall-through -> prefix B.
    fn.blocks[dispatch].term.targetBlock = prefix_a;

    auto program = cfg.link();
    std::printf("linked program: %zu instructions, %llu static "
                "uops\n",
                program->code().size(),
                (unsigned long long)program->code().totalUops());

    Trace trace = Executor(program, 42).run(50000);
    trace.validate();

    FrontendParams fp;
    XbcFrontend xbc(fp, XbcParams{});
    xbc.run(trace);

    const auto &arr = xbc.dataArray();
    std::printf("\nXFU build-case counters (paper section 3.3):\n");
    std::printf("  fresh allocations:     %llu\n",
                (unsigned long long)arr.allocs.value());
    std::printf("  case 1 (contained):    %llu\n",
                (unsigned long long)arr.containedHits.value());
    std::printf("  case 2 (extensions):   %llu\n",
                (unsigned long long)arr.extensions.value());
    std::printf("  case 3 (complex XBs):  %llu\n",
                (unsigned long long)arr.complexAdds.value());
    std::printf("  redundancy:            %.3f (1.0 = redundancy "
                "free)\n",
                arr.redundancy());
    std::printf("\nfrontend: bandwidth %.2f uops/cycle, miss rate "
                "%.2f%%\n",
                xbc.metrics().bandwidth(),
                100.0 * xbc.metrics().missRate());

    // The complex XB means BOTH paths through the diamond supply
    // at full length from the decoded cache.
    arr.checkInvariants();
    std::printf("\ndata-array invariants verified.\n");
    return 0;
}
